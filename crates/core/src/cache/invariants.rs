//! Structural-invariant checker for CMP-NuRAPID.
//!
//! These are the invariants the pointer machinery must maintain; the
//! test suite calls [`CmpNurapid::check_invariants`] after every
//! operation in its randomized workloads.

use std::collections::HashMap;

use cmp_coherence::mesic::MesicState;
use cmp_mem::{BlockAddr, CoreId};

use crate::cache::CmpNurapid;
use crate::data_array::FrameRef;

impl CmpNurapid {
    /// Verifies every structural invariant, panicking with a
    /// diagnostic on the first violation:
    ///
    /// 1. **Forward pointers are live**: every tag entry's frame is
    ///    occupied and holds the entry's block.
    /// 2. **Reverse pointers are live**: every occupied frame's owner
    ///    tag exists, matches the frame's block, and points back at
    ///    the frame.
    /// 3. **E/M blocks are singletons**: one tag entry on the whole
    ///    chip, which owns its frame.
    /// 4. **C blocks share one copy**: every tag entry for the block
    ///    is in C, all forward pointers agree, and exactly one frame
    ///    holds the block.
    /// 5. **S sharers point at live S copies**: every frame holding
    ///    the block is owned by a tag in state S.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn check_invariants(&self) {
        let mut entries_by_block: HashMap<BlockAddr, Vec<(CoreId, usize, usize)>> = HashMap::new();
        // 1. tag -> frame.
        for c in CoreId::all(self.cfg.cores) {
            for (set, way, block, entry) in self.tags[c.index()].iter_all() {
                assert!(
                    entry.state.is_valid(),
                    "{c} holds an Invalid-state resident entry for {block}"
                );
                assert!(
                    self.frame_occupied(entry.fwd),
                    "{c}'s entry for {block} forward-points at a free frame {:?}",
                    entry.fwd
                );
                let frame = self.data.frame(entry.fwd);
                assert_eq!(
                    frame.block, block,
                    "{c}'s entry for {block} forward-points at a frame holding {}",
                    frame.block
                );
                entries_by_block.entry(block).or_default().push((c, set, way));
            }
        }
        // 2. frame -> tag.
        for (fref, frame) in self.data.iter_occupied() {
            let o = frame.owner;
            let arr = &self.tags[o.core.index()];
            let owner_block = arr.block_at(o.set as usize, o.way as usize);
            assert_eq!(
                owner_block,
                Some(frame.block),
                "frame {fref:?} (block {}) has a dangling reverse pointer {o:?}",
                frame.block
            );
            let entry = self.entry(o.core, o.set as usize, o.way as usize);
            assert_eq!(
                entry.fwd, fref,
                "frame {fref:?} owner {o:?} forward-points elsewhere ({:?})",
                entry.fwd
            );
        }
        // 3-5. per-block coherence structure.
        let frames_by_block: HashMap<BlockAddr, Vec<FrameRef>> = {
            let mut m: HashMap<BlockAddr, Vec<FrameRef>> = HashMap::new();
            for (fref, frame) in self.data.iter_occupied() {
                m.entry(frame.block).or_default().push(fref);
            }
            m
        };
        for (block, holders) in &entries_by_block {
            let states: Vec<MesicState> = holders
                .iter()
                .map(|(c, s, w)| self.entry(*c, *s, *w).state)
                .collect();
            let frames = frames_by_block.get(block).map_or(&[][..], Vec::as_slice);
            if states.iter().any(|s| matches!(s, MesicState::Modified | MesicState::Exclusive)) {
                assert_eq!(
                    holders.len(),
                    1,
                    "E/M block {block} has {} tag entries: {states:?}",
                    holders.len()
                );
                assert_eq!(frames.len(), 1, "E/M block {block} has {} data copies", frames.len());
                let (c, s, w) = holders[0];
                let entry = self.entry(c, s, w);
                assert_eq!(
                    self.data.frame(entry.fwd).owner,
                    self.tag_ref(c, s, w),
                    "E/M block {block} does not own its frame"
                );
            }
            if states.contains(&MesicState::Communication) {
                assert!(
                    states.iter().all(|s| *s == MesicState::Communication),
                    "C block {block} mixes states: {states:?}"
                );
                let fwds: Vec<_> =
                    holders.iter().map(|(c, s, w)| self.entry(*c, *s, *w).fwd).collect();
                assert!(
                    fwds.windows(2).all(|w| w[0] == w[1]),
                    "C block {block} sharers disagree on the data copy: {fwds:?}"
                );
                assert_eq!(frames.len(), 1, "C block {block} has {} data copies", frames.len());
            }
            if states.contains(&MesicState::Shared) {
                for fref in frames {
                    let owner = self.data.frame(*fref).owner;
                    assert_eq!(
                        self.owner_state(owner),
                        MesicState::Shared,
                        "S block {block} has a copy owned by a non-S tag"
                    );
                }
            }
        }
        // Orphan frames: every frame's block must have tag entries
        // (follows from 2, but assert the map view is consistent too).
        for block in frames_by_block.keys() {
            assert!(
                entries_by_block.contains_key(block),
                "frames hold block {block} but no tag entry names it"
            );
        }
    }

    fn frame_occupied(&self, fref: FrameRef) -> bool {
        self.data.is_occupied(fref)
    }
}

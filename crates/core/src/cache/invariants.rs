//! Structural-invariant checker for CMP-NuRAPID.
//!
//! These are the invariants the pointer machinery must maintain. The
//! non-panicking [`CmpNurapid::try_check_invariants`] is the audit
//! entry point (`cmp-audit` calls it through `CacheOrg::audit` at a
//! configurable cadence); the panicking [`CmpNurapid::check_invariants`]
//! wrapper is kept for the test suite's randomized workloads.

use std::collections::HashMap;

use cmp_cache::Violation;
use cmp_coherence::mesic::MesicState;
use cmp_mem::{BlockAddr, CoreId};

use crate::cache::CmpNurapid;
use crate::data_array::FrameRef;

impl CmpNurapid {
    /// Verifies every structural invariant, returning a structured
    /// [`Violation`] for the first one that fails:
    ///
    /// 1. **Forward pointers are live**: every tag entry's frame is
    ///    occupied and holds the entry's block.
    /// 2. **Reverse pointers are live**: every occupied frame's owner
    ///    tag exists, matches the frame's block, and points back at
    ///    the frame.
    /// 3. **E/M blocks are singletons**: one tag entry on the whole
    ///    chip, which owns its frame.
    /// 4. **C blocks share one copy**: every tag entry for the block
    ///    is in C, all forward pointers agree, and exactly one frame
    ///    holds the block.
    /// 5. **S sharers point at live S copies**: every frame holding
    ///    the block is owned by a tag in state S.
    pub fn try_check_invariants(&self) -> Result<(), Violation> {
        let mut entries_by_block: HashMap<BlockAddr, Vec<(CoreId, usize, usize)>> = HashMap::new();
        // 1. tag -> frame.
        for c in CoreId::all(self.cfg.cores) {
            for (set, way, block, entry) in self.tags[c.index()].iter_all() {
                if !entry.state.is_valid() {
                    return Err(Violation::at(
                        "resident-entry-valid",
                        c,
                        block,
                        "a valid MESIC state",
                        format!("{:?} (set {set}, way {way})", entry.state),
                    ));
                }
                if !self.frame_occupied(entry.fwd) {
                    return Err(Violation::at(
                        "forward-pointer-live",
                        c,
                        block,
                        "an occupied frame",
                        format!("free frame {:?}", entry.fwd),
                    ));
                }
                let frame = self.data.frame(entry.fwd);
                if frame.block != block {
                    return Err(Violation::at(
                        "forward-pointer-block",
                        c,
                        block,
                        format!("frame {:?} holding {block}", entry.fwd),
                        format!("frame holding {}", frame.block),
                    ));
                }
                entries_by_block.entry(block).or_default().push((c, set, way));
            }
        }
        // 2. frame -> tag.
        for (fref, frame) in self.data.iter_occupied() {
            let o = frame.owner;
            let arr = &self.tags[o.core.index()];
            let owner_block = arr.block_at(o.set as usize, o.way as usize);
            if owner_block != Some(frame.block) {
                return Err(Violation::on_block(
                    "reverse-pointer-live",
                    frame.block,
                    format!("owner tag {o:?} naming {}", frame.block),
                    format!("{owner_block:?} (frame {fref:?})"),
                ));
            }
            let entry = self.entry(o.core, o.set as usize, o.way as usize);
            if entry.fwd != fref {
                return Err(Violation::on_block(
                    "reverse-pointer-agrees",
                    frame.block,
                    format!("owner {o:?} forward-pointing at {fref:?}"),
                    format!("forward pointer {:?}", entry.fwd),
                ));
            }
        }
        // 3-5. per-block coherence structure.
        let frames_by_block: HashMap<BlockAddr, Vec<FrameRef>> = {
            let mut m: HashMap<BlockAddr, Vec<FrameRef>> = HashMap::new();
            for (fref, frame) in self.data.iter_occupied() {
                m.entry(frame.block).or_default().push(fref);
            }
            m
        };
        for (block, holders) in &entries_by_block {
            let states: Vec<MesicState> =
                holders.iter().map(|(c, s, w)| self.entry(*c, *s, *w).state).collect();
            let frames = frames_by_block.get(block).map_or(&[][..], Vec::as_slice);
            if states.iter().any(|s| matches!(s, MesicState::Modified | MesicState::Exclusive)) {
                if holders.len() != 1 {
                    return Err(Violation::on_block(
                        "private-singleton",
                        *block,
                        "1 tag entry for an E/M block",
                        format!("{} entries in states {states:?}", holders.len()),
                    ));
                }
                if frames.len() != 1 {
                    return Err(Violation::on_block(
                        "private-single-copy",
                        *block,
                        "1 data copy for an E/M block",
                        format!("{} copies", frames.len()),
                    ));
                }
                let (c, s, w) = holders[0];
                let entry = self.entry(c, s, w);
                if self.data.frame(entry.fwd).owner != self.tag_ref(c, s, w) {
                    return Err(Violation::at(
                        "private-owns-frame",
                        c,
                        *block,
                        "the E/M holder owning its frame",
                        format!("owner {:?}", self.data.frame(entry.fwd).owner),
                    ));
                }
            }
            if states.contains(&MesicState::Communication) {
                if !states.iter().all(|s| *s == MesicState::Communication) {
                    return Err(Violation::on_block(
                        "c-uniform-states",
                        *block,
                        "all sharers of a C block in C",
                        format!("{states:?}"),
                    ));
                }
                let fwds: Vec<_> =
                    holders.iter().map(|(c, s, w)| self.entry(*c, *s, *w).fwd).collect();
                if !fwds.windows(2).all(|w| w[0] == w[1]) {
                    return Err(Violation::on_block(
                        "c-single-pointer",
                        *block,
                        "all C sharers pointing at one data copy",
                        format!("{fwds:?}"),
                    ));
                }
                if frames.len() != 1 {
                    return Err(Violation::on_block(
                        "c-single-copy",
                        *block,
                        "1 data copy for a C block",
                        format!("{} copies", frames.len()),
                    ));
                }
            }
            if states.contains(&MesicState::Shared) {
                for fref in frames {
                    let owner = self.data.frame(*fref).owner;
                    let owner_state = self.owner_state(owner);
                    if owner_state != MesicState::Shared {
                        return Err(Violation::on_block(
                            "shared-copy-owner",
                            *block,
                            "every copy of an S block owned by an S tag",
                            format!("owner {owner:?} in {owner_state:?}"),
                        ));
                    }
                }
            }
        }
        // Orphan frames: every frame's block must have tag entries
        // (follows from 2, but check the map view is consistent too).
        for block in frames_by_block.keys() {
            if !entries_by_block.contains_key(block) {
                return Err(Violation::on_block(
                    "no-orphan-frames",
                    *block,
                    "a tag entry naming every resident block",
                    "frames holding the block with no tag entry".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Verifies every structural invariant, panicking with a
    /// diagnostic on the first violation. Kept for tests; audit
    /// harnesses use [`CmpNurapid::try_check_invariants`].
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn check_invariants(&self) {
        if let Err(v) = self.try_check_invariants() {
            panic!("CMP-NuRAPID invariant violated: {v}");
        }
    }

    fn frame_occupied(&self, fref: FrameRef) -> bool {
        self.data.is_occupied(fref)
    }
}

//! The CMP-NuRAPID cache organization: access paths.
//!
//! See the crate-level docs for the big picture. This module holds
//! the [`CmpNurapid`] structure and its hit/miss handling; the
//! replacement machinery (data replacement, distance replacement /
//! demotion chains, promotion) lives in the impl blocks of
//! `replace.rs`, and the structural-invariant checker used by the
//! test suite in `invariants.rs`.

mod invariants;
mod replace;

use cmp_cache::{
    AccessClass, AccessResponse, CacheOrg, InvalScratch, OrgStats, TagArray, Violation,
};
use cmp_coherence::mesic::MesicState;
use cmp_coherence::{Bus, BusTx, SnoopSignals};
use cmp_mem::{AccessKind, BlockAddr, CoreId, Cycle, Rng};

use crate::config::NurapidConfig;
use crate::data_array::{DGroupId, DataArray, FrameRef, TagRef};
use crate::ranking::DGroupRanking;

/// Payload of one CMP-NuRAPID tag entry: MESIC state, the forward
/// pointer into the data array, and a reuse counter.
#[derive(Clone, Copy, Debug)]
pub(crate) struct NuEntry {
    pub(crate) state: MesicState,
    pub(crate) fwd: FrameRef,
    pub(crate) reuse: u64,
}

/// Counts one tag entry's transition into the Communication state.
/// Callers skip entries that were already in C: re-joining is not a
/// transition, so `coherence.c_transitions` counts only state changes.
#[inline]
fn count_c_join() {
    static C_TRANSITIONS: cmp_obs::Counter = cmp_obs::Counter::new("coherence.c_transitions");
    C_TRANSITIONS.inc();
}

/// The CMP-NuRAPID L2 cache (see crate docs and `NurapidConfig`).
pub struct CmpNurapid {
    pub(crate) cfg: NurapidConfig,
    pub(crate) ranking: DGroupRanking,
    pub(crate) tags: Vec<TagArray<NuEntry>>,
    pub(crate) data: DataArray,
    pub(crate) rng: Rng,
    pub(crate) stats: OrgStats,
    /// Frames in use by the current access, protected from the
    /// demotion chain's random victim choice — the functional analogue
    /// of Section 3.1's busy bits.
    pub(crate) busy: Vec<FrameRef>,
}

impl CmpNurapid {
    /// Creates the cache from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`NurapidConfig::validate`]).
    pub fn new(cfg: NurapidConfig) -> Self {
        cfg.validate();
        let tag_geom = cfg.tag_geometry();
        let ranking = if cfg.staggered_ranking {
            DGroupRanking::staggered(cfg.cores)
        } else {
            DGroupRanking::naive(cfg.cores)
        };
        CmpNurapid {
            ranking,
            tags: (0..cfg.cores).map(|_| TagArray::new(tag_geom)).collect(),
            data: DataArray::new(cfg.cores, cfg.frames_per_dgroup()),
            rng: Rng::new(cfg.seed),
            stats: OrgStats::default(),
            busy: Vec::with_capacity(4),
            cfg,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &NurapidConfig {
        &self.cfg
    }

    /// The staggered d-group ranking in use.
    pub fn ranking(&self) -> &DGroupRanking {
        &self.ranking
    }

    /// MESIC state of `block` in `core`'s tag array (diagnostic).
    pub fn state_of(&self, core: CoreId, block: BlockAddr) -> MesicState {
        self.lookup(core, block)
            .map_or(MesicState::Invalid, |(set, way)| self.entry(core, set, way).state)
    }

    /// D-group currently holding `core`'s copy of `block`, if any
    /// (diagnostic).
    pub fn dgroup_of(&self, core: CoreId, block: BlockAddr) -> Option<DGroupId> {
        self.lookup(core, block).map(|(set, way)| self.entry(core, set, way).fwd.group)
    }

    /// Number of occupied data frames holding `block` (diagnostic:
    /// the replication degree).
    pub fn data_copies(&self, block: BlockAddr) -> usize {
        self.data.iter_occupied().filter(|(_, f)| f.block == block).count()
    }

    /// Occupied frames per d-group, as `(occupied, capacity)` pairs —
    /// shows where capacity stealing placed the data.
    pub fn dgroup_occupancy(&self) -> Vec<(usize, usize)> {
        (0..self.data.num_groups())
            .map(|g| {
                (
                    self.data.occupied(crate::data_array::DGroupId(g as u8)),
                    self.data.frames_per_group(),
                )
            })
            .collect()
    }

    /// For each d-group, how many occupied frames are *owned* by each
    /// core's tag array (`result[group][core]`): the capacity-stealing
    /// allocation picture of Section 3.3.
    pub fn occupancy_by_owner(&self) -> Vec<Vec<usize>> {
        let mut m = vec![vec![0usize; self.cfg.cores]; self.data.num_groups()];
        for (fref, frame) in self.data.iter_occupied() {
            m[fref.group.index()][frame.owner.core.index()] += 1;
        }
        m
    }

    // ---- small internal helpers -------------------------------------------

    pub(crate) fn closest(&self, core: CoreId) -> DGroupId {
        DGroupId(self.ranking.closest(core) as u8)
    }

    pub(crate) fn dlat(&self, core: CoreId, g: DGroupId) -> Cycle {
        self.cfg.latencies.dgroup_latency(core, g.index())
    }

    pub(crate) fn tag_lat(&self) -> Cycle {
        self.cfg.latencies.nurapid_tag
    }

    pub(crate) fn lookup(&self, core: CoreId, block: BlockAddr) -> Option<(usize, usize)> {
        let arr = &self.tags[core.index()];
        arr.lookup(block).map(|way| (arr.set_of(block), way))
    }

    pub(crate) fn entry(&self, core: CoreId, set: usize, way: usize) -> &NuEntry {
        &self.tags[core.index()].entry(set, way).expect("entry present").payload
    }

    pub(crate) fn entry_mut(&mut self, core: CoreId, set: usize, way: usize) -> &mut NuEntry {
        &mut self.tags[core.index()].entry_mut(set, way).expect("entry present").payload
    }

    pub(crate) fn tag_ref(&self, core: CoreId, set: usize, way: usize) -> TagRef {
        TagRef { core, set: set as u32, way: way as u8 }
    }

    /// The MESIC state of the tag entry a frame's reverse pointer
    /// names.
    pub(crate) fn owner_state(&self, owner: TagRef) -> MesicState {
        self.entry(owner.core, owner.set as usize, owner.way as usize).state
    }

    /// Updates the forward pointer of the entry at `owner`.
    pub(crate) fn update_fwd(&mut self, owner: TagRef, frame: FrameRef) {
        self.entry_mut(owner.core, owner.set as usize, owner.way as usize).fwd = frame;
    }

    /// Snoop signals for `block` as sampled by `requestor`.
    pub(crate) fn signals_for(&self, requestor: CoreId, block: BlockAddr) -> SnoopSignals {
        let mut sig = SnoopSignals::NONE;
        for c in CoreId::all(self.cfg.cores) {
            if c == requestor {
                continue;
            }
            if let Some((set, way)) = self.lookup(c, block) {
                let st = self.entry(c, set, way).state;
                if st.is_valid() {
                    sig.shared = true;
                    if st.is_dirty() {
                        sig.dirty = true;
                    }
                }
            }
        }
        sig
    }

    /// All cores (other than `requestor`) holding a valid tag entry
    /// for `block`, as `(core, set, way)`.
    pub(crate) fn other_holders(
        &self,
        requestor: CoreId,
        block: BlockAddr,
    ) -> Vec<(CoreId, usize, usize)> {
        CoreId::all(self.cfg.cores)
            .filter(|c| *c != requestor)
            .filter_map(|c| self.lookup(c, block).map(|(s, w)| (c, s, w)))
            .collect()
    }

    /// The data copy of `block` cheapest for `requestor` to reach
    /// (several may exist under replication).
    pub(crate) fn nearest_copy(&self, requestor: CoreId, block: BlockAddr) -> Option<FrameRef> {
        CoreId::all(self.cfg.cores)
            .filter_map(|c| self.lookup(c, block).map(|(s, w)| self.entry(c, s, w).fwd))
            .min_by_key(|f| self.dlat(requestor, f.group))
    }

    /// The single dirty data copy of `block` (M or C holder's frame).
    pub(crate) fn dirty_frame(&self, block: BlockAddr) -> Option<FrameRef> {
        CoreId::all(self.cfg.cores)
            .filter_map(|c| self.lookup(c, block).map(|(s, w)| self.entry(c, s, w)))
            .find(|e| e.state.is_dirty())
            .map(|e| e.fwd)
    }

    // ---- hit path ---------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn hit(
        &mut self,
        core: CoreId,
        set: usize,
        way: usize,
        block: BlockAddr,
        kind: AccessKind,
        now: Cycle,
        bus: &mut Bus,
        resp: &mut AccessResponse,
        inv: &mut InvalScratch,
    ) -> Result<(), Violation> {
        let closest = self.closest(core);
        let mut state = self.entry(core, set, way).state;
        // Extension: a C block whose other sharers are all gone
        // collapses back to M (see NurapidConfig::c_collapse). The
        // sole remaining holder is necessarily the frame's owner.
        if self.cfg.c_collapse
            && state == MesicState::Communication
            && self.other_holders(core, block).is_empty()
        {
            state = MesicState::Modified;
            self.entry_mut(core, set, way).state = MesicState::Modified;
            self.stats.c_collapses += 1;
        }
        let fwd = self.entry(core, set, way).fwd;
        self.tags[core.index()].touch(set, way);
        {
            let e = self.entry_mut(core, set, way);
            e.reuse += 1;
        }
        let base = self.tag_lat() + self.dlat(core, fwd.group);
        resp.class = AccessClass::Hit { closest: fwd.group == closest };
        resp.latency = base;
        match (state, kind) {
            (MesicState::Exclusive | MesicState::Modified, _) => {
                if kind.is_write() {
                    self.entry_mut(core, set, way).state = MesicState::Modified;
                }
                if fwd.group != closest {
                    // Capacity stealing: promote the private block
                    // toward the requestor (Section 3.3.1).
                    self.promote(core, set, way, block, bus, now, inv);
                }
            }
            (MesicState::Shared, AccessKind::Read) => {
                let my_tag = self.tag_ref(core, set, way);
                if fwd.group != closest && self.data.frame(fwd).owner != my_tag {
                    // Controlled replication, second use: make a data
                    // copy in the closest d-group (Figure 3c). Only a
                    // *pointer* holder replicates; if the farther copy
                    // is this core's own (a block that went shared
                    // after being demoted), it stays where it is —
                    // shared blocks are never moved (Section 3.3.1).
                    self.busy.push(fwd);
                    self.ensure_free_frame(core, closest, bus, now, inv);
                    let nf = self.data.alloc(closest, block, my_tag);
                    self.entry_mut(core, set, way).fwd = nf;
                    self.stats.replications += 1;
                }
            }
            (MesicState::Shared, AccessKind::Write) => {
                // Base-MESI upgrade: invalidate every other tag copy.
                let grant = bus.transact(BusTx::BusUpg, now);
                resp.latency = self.tag_lat() + grant.stall_from(now) + self.dlat(core, fwd.group);
                let my_tag = self.tag_ref(core, set, way);
                for (c, s, w) in self.other_holders(core, block) {
                    let their_fwd = self.entry(c, s, w).fwd;
                    let their_tag = self.tag_ref(c, s, w);
                    // The frame may already be gone: several sharers
                    // can point at one copy whose owner was processed
                    // earlier in this loop.
                    if self.data.is_occupied(their_fwd)
                        && self.data.frame(their_fwd).owner == their_tag
                    {
                        if their_fwd == fwd {
                            // They owned the very copy I point at:
                            // take the frame over.
                            self.data.set_owner(their_fwd, my_tag);
                        } else {
                            // A duplicate copy elsewhere: free it.
                            self.data.free(their_fwd);
                        }
                    }
                    self.tags[c.index()].evict(s, w);
                    inv.push(c, block);
                }
                self.entry_mut(core, set, way).state = MesicState::Modified;
            }
            (MesicState::Communication, AccessKind::Read) => {}
            (MesicState::Communication, AccessKind::Write) => {
                // Write-through to the single copy; posted BusRdX so
                // other sharers drop stale L1 copies (their tags stay
                // in C).
                bus.post(BusTx::BusRdX, now);
                for (c, _, _) in self.other_holders(core, block) {
                    inv.push(c, block);
                }
            }
            (MesicState::Invalid, _) => {
                return Err(Violation::at(
                    "resident-entry-valid",
                    core,
                    block,
                    "a valid MESIC state for a resident entry",
                    "Invalid",
                ));
            }
        }
        if self.entry(core, set, way).state == MesicState::Communication {
            resp.writethrough = true;
        }
        Ok(())
    }

    // ---- miss path --------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn miss(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        now: Cycle,
        bus: &mut Bus,
        resp: &mut AccessResponse,
        inv: &mut InvalScratch,
    ) -> Result<(), Violation> {
        let closest = self.closest(core);
        // Routed through the bus so the audit harness's snoop-fault
        // plan can tamper with the sampled wires deterministically.
        let signals = bus.sample_signals(self.signals_for(core, block));
        // Make room in the tag array first; any frame it frees becomes
        // the demotion chain's preferred stopping point.
        let (set, way, _hole) = self.make_tag_room(core, block, bus, now, inv);
        let my_tag = self.tag_ref(core, set, way);

        if signals.dirty && self.cfg.in_situ_communication {
            // In-situ communication (Section 3.2).
            resp.class = AccessClass::MissRws;
            let src = self.dirty_frame(block).ok_or_else(|| {
                Violation::at(
                    "dirty-signal-has-frame",
                    core,
                    block,
                    "a dirty (M/C) data copy behind an asserted dirty signal",
                    "no dirty copy on chip",
                )
            })?;
            let tx = if kind.is_write() { BusTx::BusRdX } else { BusTx::BusRd };
            let grant = bus.transact(tx, now);
            resp.latency = self.tag_lat() + grant.stall_from(now) + self.dlat(core, src.group);
            if kind.is_write() {
                // Join C writing the existing copy in place.
                for (c, s, w) in self.other_holders(core, block) {
                    let e = self.entry_mut(c, s, w);
                    if e.state != MesicState::Communication {
                        count_c_join();
                    }
                    e.state = MesicState::Communication;
                    inv.push(c, block);
                }
                count_c_join();
                self.tags[core.index()].fill(
                    set,
                    way,
                    block,
                    NuEntry { state: MesicState::Communication, fwd: src, reuse: 0 },
                );
                resp.writethrough = true;
            } else {
                // Reader relocates the copy into its closest d-group;
                // every sharer's forward pointer follows.
                let contents = self.data.free(src);
                debug_assert_eq!(contents.block, block);
                self.ensure_free_frame(core, closest, bus, now, inv);
                let nf = self.data.alloc(closest, block, my_tag);
                for (c, s, w) in self.other_holders(core, block) {
                    let e = self.entry_mut(c, s, w);
                    if e.state != MesicState::Communication {
                        count_c_join();
                    }
                    e.state = MesicState::Communication;
                    e.fwd = nf;
                    // Force the old holder's L1 to refill so its line
                    // adopts write-through C semantics.
                    inv.push(c, block);
                }
                count_c_join();
                self.tags[core.index()].fill(
                    set,
                    way,
                    block,
                    NuEntry { state: MesicState::Communication, fwd: nf, reuse: 0 },
                );
                resp.writethrough = true;
            }
            return Ok(());
        }

        if signals.dirty && !self.cfg.in_situ_communication {
            // ISC disabled: MESI behaviour. The dirty holder is
            // flushed to memory and demoted to S (keeping its frame);
            // the request then proceeds as clean sharing.
            resp.class = AccessClass::MissRws;
            for (c, s, w) in self.other_holders(core, block) {
                let e = self.entry_mut(c, s, w);
                if e.state.is_dirty() {
                    e.state = MesicState::Shared;
                    self.stats.writebacks += 1;
                }
            }
            return self
                .finish_clean_sharing_miss(core, block, kind, set, way, now, bus, resp, inv);
        }

        if signals.shared {
            resp.class = AccessClass::MissRos;
            return self
                .finish_clean_sharing_miss(core, block, kind, set, way, now, bus, resp, inv);
        }

        // No on-chip copy: fetch from memory.
        resp.class = AccessClass::MissCapacity;
        let tx = if kind.is_write() { BusTx::BusRdX } else { BusTx::BusRd };
        let grant = bus.transact(tx, now);
        resp.latency = self.tag_lat() + grant.stall_from(now) + self.cfg.latencies.memory;
        self.ensure_free_frame(core, closest, bus, now, inv);
        let nf = self.data.alloc(closest, block, my_tag);
        let state = if kind.is_write() { MesicState::Modified } else { MesicState::Exclusive };
        self.tags[core.index()].fill(set, way, block, NuEntry { state, fwd: nf, reuse: 0 });
        Ok(())
    }

    /// Completes a miss whose block has on-chip clean copies: CR
    /// pointer transfer or eager replication for reads, BusRdX
    /// takeover for writes.
    #[allow(clippy::too_many_arguments)]
    fn finish_clean_sharing_miss(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        set: usize,
        way: usize,
        now: Cycle,
        bus: &mut Bus,
        resp: &mut AccessResponse,
        inv: &mut InvalScratch,
    ) -> Result<(), Violation> {
        let closest = self.closest(core);
        let my_tag = self.tag_ref(core, set, way);
        let src = self.nearest_copy(core, block).ok_or_else(|| {
            Violation::at(
                "shared-signal-has-copy",
                core,
                block,
                "an on-chip data copy behind an asserted shared signal",
                "no copy on chip",
            )
        })?;
        let src_lat = self.dlat(core, src.group);
        if kind.is_write() {
            // BusRdX: every remote tag copy is invalidated; frames
            // they owned are freed; the requestor takes its own copy.
            let grant = bus.transact(BusTx::BusRdX, now);
            resp.latency = self.tag_lat() + grant.stall_from(now) + src_lat;
            for (c, s, w) in self.other_holders(core, block) {
                let their_fwd = self.entry(c, s, w).fwd;
                let their_tag = self.tag_ref(c, s, w);
                // Guard against a copy already freed via its owner
                // earlier in this loop.
                if self.data.is_occupied(their_fwd) && self.data.frame(their_fwd).owner == their_tag
                {
                    self.data.free(their_fwd);
                }
                self.tags[c.index()].evict(s, w);
                inv.push(c, block);
            }
            self.ensure_free_frame(core, closest, bus, now, inv);
            let nf = self.data.alloc(closest, block, my_tag);
            self.tags[core.index()].fill(
                set,
                way,
                block,
                NuEntry { state: MesicState::Modified, fwd: nf, reuse: 0 },
            );
            return Ok(());
        }
        // Read: demote remote E holders to S.
        let grant = bus.transact(BusTx::BusRd, now);
        resp.latency = self.tag_lat() + grant.stall_from(now) + src_lat;
        for (c, s, w) in self.other_holders(core, block) {
            let e = self.entry_mut(c, s, w);
            if e.state == MesicState::Exclusive {
                e.state = MesicState::Shared;
            }
        }
        if self.cfg.controlled_replication {
            // CR first use: tag copy only, pointing at the existing
            // data (the pointer return of Figure 3b).
            self.stats.pointer_transfers += 1;
            self.tags[core.index()].fill(
                set,
                way,
                block,
                NuEntry { state: MesicState::Shared, fwd: src, reuse: 0 },
            );
        } else {
            // Uncontrolled replication: copy the data eagerly, like a
            // private cache would.
            self.busy.push(src);
            self.ensure_free_frame(core, closest, bus, now, inv);
            let nf = self.data.alloc(closest, block, my_tag);
            self.stats.replications += 1;
            self.tags[core.index()].fill(
                set,
                way,
                block,
                NuEntry { state: MesicState::Shared, fwd: nf, reuse: 0 },
            );
        }
        Ok(())
    }

    // ---- audited access ---------------------------------------------------

    /// Fallible access path: like [`CacheOrg::access`] but surfaces a
    /// protocol [`Violation`] instead of panicking when the structure
    /// contradicts the sampled snoop signals (possible under the audit
    /// harness's fault injection). On `Err` the access is not counted
    /// in the statistics and any partial tag-room changes are left in
    /// a structurally benign state (an empty way at worst).
    pub fn try_access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        now: Cycle,
        bus: &mut Bus,
        inv: &mut InvalScratch,
    ) -> Result<AccessResponse, Violation> {
        self.busy.clear();
        inv.begin();
        let mut resp = AccessResponse::simple(0, AccessClass::MissCapacity);
        match self.lookup(core, block) {
            Some((set, way)) => self.hit(core, set, way, block, kind, now, bus, &mut resp, inv)?,
            None => self.miss(core, block, kind, now, bus, &mut resp, inv)?,
        }
        self.stats.record_class(resp.class);
        self.stats.l1_invalidations += inv.len() as u64;
        Ok(resp)
    }

    /// Deterministically skews one randomly chosen tag entry's forward
    /// pointer to a frame that is either free or holds a different
    /// block — corruptions [`CmpNurapid::try_check_invariants`] is
    /// guaranteed to flag (`forward-pointer-live` /
    /// `forward-pointer-block`). Returns a description of the
    /// corruption, or `None` when no entry is resident yet.
    pub fn inject_tag_fault(&mut self, rng: &mut Rng) -> Option<String> {
        let entries: Vec<(CoreId, usize, usize, BlockAddr)> = CoreId::all(self.cfg.cores)
            .flat_map(|c| self.tags[c.index()].iter_all().map(move |(s, w, b, _)| (c, s, w, b)))
            .collect();
        if entries.is_empty() {
            return None;
        }
        let (core, set, way, block) = entries[rng.gen_index(entries.len())];
        let cur = self.entry(core, set, way).fwd;
        let mut targets: Vec<FrameRef> = Vec::new();
        for g in 0..self.data.num_groups() {
            let gid = DGroupId(g as u8);
            for index in 0..self.data.frames_per_group() {
                let f = FrameRef { group: gid, index: index as u32 };
                if f != cur && (!self.data.is_occupied(f) || self.data.frame(f).block != block) {
                    targets.push(f);
                }
            }
        }
        let nf = *targets.get(rng.gen_index(targets.len().max(1)))?;
        self.entry_mut(core, set, way).fwd = nf;
        Some(format!("skewed {core} tag for {block}: fwd {cur:?} -> {nf:?}"))
    }
}

impl CacheOrg for CmpNurapid {
    fn name(&self) -> &'static str {
        "nurapid"
    }

    #[inline]
    fn access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        now: Cycle,
        bus: &mut Bus,
        inv: &mut InvalScratch,
    ) -> AccessResponse {
        match CmpNurapid::try_access(self, core, block, kind, now, bus, inv) {
            Ok(resp) => resp,
            Err(v) => panic!("CMP-NuRAPID protocol violation: {v}"),
        }
    }

    fn stats(&self) -> &OrgStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OrgStats::default();
    }

    fn cores(&self) -> usize {
        self.cfg.cores
    }

    fn try_access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        now: Cycle,
        bus: &mut Bus,
        inv: &mut InvalScratch,
    ) -> Result<AccessResponse, Violation> {
        CmpNurapid::try_access(self, core, block, kind, now, bus, inv)
    }

    fn audit(&self) -> Result<(), Violation> {
        self.try_check_invariants()
    }

    fn inject_tag_fault(&mut self, rng: &mut Rng) -> Option<String> {
        CmpNurapid::inject_tag_fault(self, rng)
    }
}

impl std::fmt::Debug for CmpNurapid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmpNurapid")
            .field("cores", &self.cfg.cores)
            .field("frames_per_dgroup", &self.cfg.frames_per_dgroup())
            .field("tag_entries", &self.tags.iter().map(TagArray::len).sum::<usize>())
            .finish()
    }
}

//! Capacity stealing (Section 3.3): placement, promotion, demotion.

use cmp_cache::{AccessClass, CacheOrg};
use cmp_coherence::Bus;
use cmp_mem::{AccessKind, BlockAddr, CoreId};
use cmp_nurapid::{CmpNurapid, DGroupId, NurapidConfig, PromotionPolicy};

const TINY_FRAMES: usize = 8;

fn tiny() -> (CmpNurapid, Bus, u64) {
    (CmpNurapid::new(NurapidConfig::tiny(4, TINY_FRAMES * 128)), Bus::paper(), 0)
}

fn rd(
    l2: &mut CmpNurapid,
    bus: &mut Bus,
    t: &mut u64,
    core: u8,
    block: u64,
) -> cmp_cache::CollectedResponse {
    *t += 1_000;
    let r = l2.access_collected(CoreId(core), BlockAddr(block), AccessKind::Read, *t, bus);
    l2.check_invariants();
    r
}

#[test]
fn overflow_spills_into_neighbor_dgroups() {
    // P0 touches far more blocks than its closest d-group holds while
    // the other cores are idle: the excess must be demoted into
    // neighbours' unused frames instead of being evicted.
    let (mut l2, mut bus, mut t) = tiny();
    // 2x one d-group's frames: fits P0's (doubled) tag array exactly
    // and fits on-chip only by stealing neighbours' frames.
    let blocks = 2 * TINY_FRAMES;
    for b in 0..blocks as u64 {
        rd(&mut l2, &mut bus, &mut t, 0, b);
    }
    assert!(l2.stats().demotions > 0, "overflow must demote, not just evict");
    // Every block stays resident: the overflow lands in neighbour
    // d-groups' free frames instead of being evicted.
    let resident =
        (0..blocks as u64).filter(|b| l2.dgroup_of(CoreId(0), BlockAddr(*b)).is_some()).count();
    assert_eq!(resident, blocks, "capacity stealing keeps the whole working set on chip");
    assert_eq!(l2.stats().miss_capacity, blocks as u64, "each block missed exactly once");
}

#[test]
fn reuse_promotes_demoted_blocks_back() {
    let (mut l2, mut bus, mut t) = tiny();
    // Fill beyond one d-group so something gets demoted.
    for b in 0..(2 * TINY_FRAMES) as u64 {
        rd(&mut l2, &mut bus, &mut t, 0, b);
    }
    // Find a block demoted to a farther d-group and touch it.
    let demoted = (0..(2 * TINY_FRAMES) as u64)
        .find(|b| matches!(l2.dgroup_of(CoreId(0), BlockAddr(*b)), Some(g) if g != DGroupId(0)));
    let Some(b) = demoted else {
        panic!("expected at least one demoted block");
    };
    let promotions_before = l2.stats().promotions;
    let hit = rd(&mut l2, &mut bus, &mut t, 0, b);
    assert_eq!(hit.class, AccessClass::Hit { closest: false });
    assert_eq!(l2.stats().promotions, promotions_before + 1);
    // Fastest policy: straight back to the closest d-group.
    assert_eq!(l2.dgroup_of(CoreId(0), BlockAddr(b)), Some(DGroupId(0)));
    let hit2 = rd(&mut l2, &mut bus, &mut t, 0, b);
    assert_eq!(hit2.class, AccessClass::Hit { closest: true });
}

#[test]
fn next_fastest_promotion_moves_one_rank() {
    let mut cfg = NurapidConfig::tiny(4, TINY_FRAMES * 128);
    cfg.promotion = PromotionPolicy::NextFastest;
    let mut l2 = CmpNurapid::new(cfg);
    let mut bus = Bus::paper();
    let mut t = 0;
    for b in 0..(3 * TINY_FRAMES) as u64 {
        rd(&mut l2, &mut bus, &mut t, 0, b);
    }
    // Find a block in P0's rank-3 (farthest) d-group; next-fastest
    // should move it to rank 2, not rank 0.
    let farthest = DGroupId(l2.ranking().at(CoreId(0), 3) as u8);
    let in_farthest = (0..(3 * TINY_FRAMES) as u64)
        .find(|b| l2.dgroup_of(CoreId(0), BlockAddr(*b)) == Some(farthest));
    let Some(b) = in_farthest else {
        // Demotion randomness may leave nothing in the farthest group;
        // fall back to any non-closest block.
        let b = (0..(3 * TINY_FRAMES) as u64)
            .find(|b| matches!(l2.dgroup_of(CoreId(0), BlockAddr(*b)), Some(g) if g != DGroupId(0)))
            .expect("some block must be demoted");
        let old_rank =
            l2.ranking().rank_of(CoreId(0), l2.dgroup_of(CoreId(0), BlockAddr(b)).unwrap().index());
        rd(&mut l2, &mut bus, &mut t, 0, b);
        let new_rank =
            l2.ranking().rank_of(CoreId(0), l2.dgroup_of(CoreId(0), BlockAddr(b)).unwrap().index());
        assert_eq!(new_rank, old_rank - 1, "next-fastest promotes exactly one rank");
        return;
    };
    rd(&mut l2, &mut bus, &mut t, 0, b);
    let expected = DGroupId(l2.ranking().at(CoreId(0), 2) as u8);
    assert_eq!(l2.dgroup_of(CoreId(0), BlockAddr(b)), Some(expected));
}

#[test]
fn shared_blocks_are_never_demoted() {
    let (mut l2, mut bus, mut t) = tiny();
    // Install a shared block with copies for P0 (owner) and P1 (CR
    // second use gives P1 its own copy too).
    rd(&mut l2, &mut bus, &mut t, 0, 500);
    rd(&mut l2, &mut bus, &mut t, 1, 500);
    rd(&mut l2, &mut bus, &mut t, 1, 500);
    // Thrash P0's d-group heavily.
    for b in 0..(6 * TINY_FRAMES) as u64 {
        rd(&mut l2, &mut bus, &mut t, 0, b);
    }
    // Wherever P0's or P1's copy of 500 survived, a shared (S-state)
    // copy must sit in its owner's closest d-group — shared blocks are
    // evicted on replacement, never demoted outward.
    for c in 0..2u8 {
        if let Some(g) = l2.dgroup_of(CoreId(c), BlockAddr(500)) {
            let owner_closest = l2.ranking().order(CoreId(c)).iter().position(|&x| x == g.index());
            // Either the core points at its own closest copy or at
            // another sharer's copy; it must never point at a d-group
            // that is not some core's closest-resident copy.
            assert!(owner_closest.is_some());
        }
    }
    // Each surviving copy of the shared block stays where its owner
    // placed it — shared blocks are never demoted outward.
    let copies = l2.data_copies(BlockAddr(500));
    assert!(copies <= 2);
    l2.check_invariants();
}

#[test]
fn multiprogrammed_asymmetry_steals_capacity() {
    // P0 runs a big working set; P1-P3 run tiny ones. P0's effective
    // capacity should far exceed one d-group.
    let (mut l2, mut bus, mut t) = tiny();
    for round in 0..3 {
        let _ = round;
        // Small cores touch their single hot block.
        for c in 1..4u8 {
            rd(&mut l2, &mut bus, &mut t, c, 9_000 + c as u64);
        }
        // Big core streams.
        for b in 0..(2 * TINY_FRAMES) as u64 {
            rd(&mut l2, &mut bus, &mut t, 0, b);
        }
    }
    // After the first cold round, P0's re-touches should mostly hit:
    // its working set (2 d-groups worth) fits on chip via stealing.
    let s = l2.stats();
    let accesses = s.accesses();
    let hits = s.hits();
    assert!(
        hits * 2 > accesses,
        "capacity stealing should make most accesses hit: {hits}/{accesses}"
    );
    assert!(s.demotions > 0);
}

#[test]
fn eviction_order_prefers_private_over_shared() {
    // Fill a tag set with one shared and one private block (2-way
    // tags); the next conflicting fill must evict the private one.
    let mut cfg = NurapidConfig::tiny(2, 64 * 128);
    cfg.associativity = 2;
    let mut l2 = CmpNurapid::new(cfg);
    let mut bus = Bus::paper();
    let mut t = 0;
    let sets = l2.config().tag_geometry().num_sets() as u64;
    // Three blocks in the same P0 tag set.
    let (b1, b2, b3) = (1u64, 1 + sets, 1 + 2 * sets);
    rd(&mut l2, &mut bus, &mut t, 0, b1); // E (private)
    rd(&mut l2, &mut bus, &mut t, 1, b2);
    rd(&mut l2, &mut bus, &mut t, 0, b2); // S (shared), MRU
                                          // b1 is private and LRU; but even if we touch b1 to make the
                                          // shared b2 the LRU, the private b1 must still be the victim.
    rd(&mut l2, &mut bus, &mut t, 0, b1);
    rd(&mut l2, &mut bus, &mut t, 0, b3);
    assert_eq!(l2.dgroup_of(CoreId(0), BlockAddr(b1)), None, "private victim evicted");
    assert!(l2.dgroup_of(CoreId(0), BlockAddr(b2)).is_some(), "shared block survives");
    l2.check_invariants();
}

//! The `c_collapse` extension: exits from the C state once sharing
//! stops (the paper's stated future work, Section 3.2).

use cmp_cache::{AccessClass, CacheOrg};
use cmp_coherence::mesic::MesicState;
use cmp_coherence::Bus;
use cmp_mem::{AccessKind, BlockAddr, CoreId, Rng};
use cmp_nurapid::{CmpNurapid, DGroupId, NurapidConfig};

const FRAMES: usize = 8;

fn cache(collapse: bool) -> (CmpNurapid, Bus, u64) {
    let cfg = NurapidConfig { c_collapse: collapse, ..NurapidConfig::tiny(4, FRAMES * 128) };
    (CmpNurapid::new(cfg), Bus::paper(), 0)
}

fn acc(l2: &mut CmpNurapid, bus: &mut Bus, t: &mut u64, core: u8, block: u64, kind: AccessKind) {
    *t += 1_000;
    l2.access_collected(CoreId(core), BlockAddr(block), kind, *t, bus);
    l2.check_invariants();
}

/// Sets up a C block shared by P0 (writer) and P1 (reader, who owns
/// the relocated copy), then evicts the *writer's* (non-owner) tag by
/// conflicting fills, leaving P1 the lone C holder. Returns the
/// caches and the block.
///
/// Evicting the owner's tag instead would broadcast BusRepl and kill
/// the whole block — which is why the lonely holder is the owner.
fn setup_lonely_c(collapse: bool) -> (CmpNurapid, Bus, u64, u64) {
    let (mut l2, mut bus, mut t) = cache(collapse);
    let block = 5u64;
    acc(&mut l2, &mut bus, &mut t, 0, block, AccessKind::Write);
    acc(&mut l2, &mut bus, &mut t, 1, block, AccessKind::Read); // both in C; copy owned by P1
    assert_eq!(l2.state_of(CoreId(0), BlockAddr(block)), MesicState::Communication);
    assert_eq!(l2.state_of(CoreId(1), BlockAddr(block)), MesicState::Communication);
    // Conflict P0's tag set until its entry for `block` is evicted.
    // The replacement policy evicts private entries before shared
    // ones, so the conflicting fills must themselves be shared
    // (tag-only CR pointers to blocks P2 owns): same set, 2-way.
    let sets = l2.config().tag_geometry().num_sets() as u64;
    let mut i = 1;
    while l2.state_of(CoreId(0), BlockAddr(block)) != MesicState::Invalid {
        let conflicting = block + i * sets;
        acc(&mut l2, &mut bus, &mut t, 2, conflicting, AccessKind::Read); // P2 owns it
        acc(&mut l2, &mut bus, &mut t, 0, conflicting, AccessKind::Read); // P0: shared tag
        i += 1;
        assert!(i < 64, "P0's tag entry should conflict out quickly");
    }
    assert_eq!(l2.state_of(CoreId(1), BlockAddr(block)), MesicState::Communication);
    (l2, bus, t, block)
}

#[test]
fn without_collapse_the_block_stays_in_c_forever() {
    let (mut l2, mut bus, mut t, block) = setup_lonely_c(false);
    for _ in 0..4 {
        acc(&mut l2, &mut bus, &mut t, 1, block, AccessKind::Write);
        assert_eq!(
            l2.state_of(CoreId(1), BlockAddr(block)),
            MesicState::Communication,
            "the paper's protocol has no exits from C"
        );
    }
    assert_eq!(l2.stats().c_collapses, 0);
}

#[test]
fn with_collapse_a_lonely_c_block_reverts_to_m() {
    let (mut l2, mut bus, mut t, block) = setup_lonely_c(true);
    acc(&mut l2, &mut bus, &mut t, 1, block, AccessKind::Write);
    assert_eq!(l2.state_of(CoreId(1), BlockAddr(block)), MesicState::Modified);
    assert_eq!(l2.stats().c_collapses, 1);
}

#[test]
fn collapsed_block_stays_put_in_the_owners_dgroup() {
    // The relocated C copy already sits in P1's closest d-group;
    // collapsing to M there needs no movement, and M hits are now
    // closest-latency hits.
    let (mut l2, mut bus, mut t, block) = setup_lonely_c(true);
    assert_eq!(
        l2.dgroup_of(CoreId(1), BlockAddr(block)),
        Some(DGroupId(1)),
        "copy was relocated to the reader"
    );
    acc(&mut l2, &mut bus, &mut t, 1, block, AccessKind::Write); // collapse
    assert_eq!(l2.state_of(CoreId(1), BlockAddr(block)), MesicState::Modified);
    assert_eq!(l2.dgroup_of(CoreId(1), BlockAddr(block)), Some(DGroupId(1)));
    t += 1_000;
    let r = l2.access_collected(CoreId(1), BlockAddr(block), AccessKind::Read, t, &mut bus);
    assert_eq!(r.class, AccessClass::Hit { closest: true });
}

#[test]
fn collapse_requires_all_other_sharers_gone() {
    let (mut l2, mut bus, mut t) = cache(true);
    acc(&mut l2, &mut bus, &mut t, 0, 5, AccessKind::Write);
    acc(&mut l2, &mut bus, &mut t, 1, 5, AccessKind::Read);
    acc(&mut l2, &mut bus, &mut t, 2, 5, AccessKind::Read);
    // Both sharers alive: no collapse on P0's writes.
    acc(&mut l2, &mut bus, &mut t, 0, 5, AccessKind::Write);
    assert_eq!(l2.state_of(CoreId(0), BlockAddr(5)), MesicState::Communication);
    assert_eq!(l2.stats().c_collapses, 0);
}

#[test]
fn collapsed_writes_stop_posting_busrdx() {
    use cmp_coherence::BusTx;
    let (mut l2, mut bus, mut t, block) = setup_lonely_c(true);
    acc(&mut l2, &mut bus, &mut t, 1, block, AccessKind::Write); // collapse
    let before = bus.stats().count(BusTx::BusRdX);
    acc(&mut l2, &mut bus, &mut t, 1, block, AccessKind::Write); // plain M write
    assert_eq!(bus.stats().count(BusTx::BusRdX), before, "M writes are bus-silent");
}

#[test]
fn collapse_responses_lose_the_writethrough_marking() {
    let (mut l2, mut bus, mut t, block) = setup_lonely_c(true);
    t += 1_000;
    let r = l2.access_collected(CoreId(1), BlockAddr(block), AccessKind::Write, t, &mut bus);
    assert!(!r.writethrough, "collapsed blocks are write-back again");
    assert!(r.class.is_hit());
    assert_ne!(r.class, AccessClass::MissRws);
}

#[test]
fn stress_with_collapse_keeps_invariants() {
    let cfg = NurapidConfig { c_collapse: true, ..NurapidConfig::tiny(4, FRAMES * 128) };
    let mut l2 = CmpNurapid::new(cfg);
    let mut bus = Bus::paper();
    let mut rng = Rng::new(0xC011);
    let mut now = 0;
    for i in 0..25_000 {
        now += 50;
        let core = CoreId(rng.gen_index(4) as u8);
        let block = BlockAddr(rng.gen_range(48));
        let kind = if rng.gen_bool(0.35) { AccessKind::Write } else { AccessKind::Read };
        l2.access_collected(core, block, kind, now, &mut bus);
        if i % 97 == 0 {
            l2.check_invariants();
        }
    }
    l2.check_invariants();
    assert!(l2.stats().c_collapses > 0, "heavy sharing churn should trigger collapses");
}

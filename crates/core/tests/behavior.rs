//! Behavioral tests for CMP-NuRAPID: the paper's scenarios, played
//! out move by move.

use cmp_cache::{AccessClass, CacheOrg};
use cmp_coherence::mesic::MesicState;
use cmp_coherence::{Bus, BusTx};
use cmp_mem::{AccessKind, BlockAddr, CoreId};
use cmp_nurapid::{CmpNurapid, DGroupId, NurapidConfig};

fn paper_cache() -> (CmpNurapid, Bus, u64) {
    (CmpNurapid::new(NurapidConfig::paper()), Bus::paper(), 0)
}

fn rd(
    l2: &mut CmpNurapid,
    bus: &mut Bus,
    t: &mut u64,
    core: u8,
    block: u64,
) -> cmp_cache::CollectedResponse {
    *t += 1_000;
    let r = l2.access_collected(CoreId(core), BlockAddr(block), AccessKind::Read, *t, bus);
    l2.check_invariants();
    r
}

fn wr(
    l2: &mut CmpNurapid,
    bus: &mut Bus,
    t: &mut u64,
    core: u8,
    block: u64,
) -> cmp_cache::CollectedResponse {
    *t += 1_000;
    let r = l2.access_collected(CoreId(core), BlockAddr(block), AccessKind::Write, *t, bus);
    l2.check_invariants();
    r
}

// ---- placement & hits ------------------------------------------------------

#[test]
fn cold_miss_places_in_closest_dgroup() {
    let (mut l2, mut bus, mut t) = paper_cache();
    let miss = rd(&mut l2, &mut bus, &mut t, 2, 77);
    assert_eq!(miss.class, AccessClass::MissCapacity);
    // tag (5) + bus (32) + memory (300).
    assert_eq!(miss.latency, 5 + 32 + 300);
    assert_eq!(l2.dgroup_of(CoreId(2), BlockAddr(77)), Some(DGroupId(2)));
    assert_eq!(l2.state_of(CoreId(2), BlockAddr(77)), MesicState::Exclusive);
}

#[test]
fn closest_hit_is_eleven_cycles() {
    let (mut l2, mut bus, mut t) = paper_cache();
    rd(&mut l2, &mut bus, &mut t, 0, 77);
    let hit = rd(&mut l2, &mut bus, &mut t, 0, 77);
    // tag (5) + closest d-group (6).
    assert_eq!(hit.latency, 11);
    assert_eq!(hit.class, AccessClass::Hit { closest: true });
}

#[test]
fn write_miss_lands_in_modified() {
    let (mut l2, mut bus, mut t) = paper_cache();
    wr(&mut l2, &mut bus, &mut t, 1, 9);
    assert_eq!(l2.state_of(CoreId(1), BlockAddr(9)), MesicState::Modified);
    assert_eq!(l2.dgroup_of(CoreId(1), BlockAddr(9)), Some(DGroupId(1)));
}

// ---- controlled replication (Figure 3) -------------------------------------

#[test]
fn cr_first_use_takes_tag_only_pointer() {
    let (mut l2, mut bus, mut t) = paper_cache();
    rd(&mut l2, &mut bus, &mut t, 0, 7); // Figure 3a: P0 has X in d-group a
    let miss = rd(&mut l2, &mut bus, &mut t, 1, 7); // Figure 3b
    assert_eq!(miss.class, AccessClass::MissRos);
    // tag (5) + bus (32) + d-group a from P1 (20): far cheaper than memory.
    assert_eq!(miss.latency, 5 + 32 + 20);
    assert_eq!(l2.data_copies(BlockAddr(7)), 1, "no data copy on first use");
    assert_eq!(
        l2.dgroup_of(CoreId(1), BlockAddr(7)),
        Some(DGroupId(0)),
        "P1 points into d-group a"
    );
    assert_eq!(l2.stats().pointer_transfers, 1);
    assert_eq!(l2.state_of(CoreId(0), BlockAddr(7)), MesicState::Shared);
    assert_eq!(l2.state_of(CoreId(1), BlockAddr(7)), MesicState::Shared);
}

#[test]
fn cr_second_use_replicates_into_closest() {
    let (mut l2, mut bus, mut t) = paper_cache();
    rd(&mut l2, &mut bus, &mut t, 0, 7);
    rd(&mut l2, &mut bus, &mut t, 1, 7); // first use: pointer
    let second = rd(&mut l2, &mut bus, &mut t, 1, 7); // Figure 3c
    assert_eq!(second.class, AccessClass::Hit { closest: false });
    assert_eq!(l2.data_copies(BlockAddr(7)), 2, "second use makes the copy");
    assert_eq!(l2.dgroup_of(CoreId(1), BlockAddr(7)), Some(DGroupId(1)));
    assert_eq!(l2.stats().replications, 1);
    // Third use hits the local copy at closest latency.
    let third = rd(&mut l2, &mut bus, &mut t, 1, 7);
    assert_eq!(third.latency, 11);
    assert_eq!(third.class, AccessClass::Hit { closest: true });
    // P0's copy is untouched.
    assert_eq!(l2.dgroup_of(CoreId(0), BlockAddr(7)), Some(DGroupId(0)));
}

#[test]
fn cr_disabled_replicates_eagerly() {
    let mut l2 = CmpNurapid::new(NurapidConfig::paper_isc_only());
    let mut bus = Bus::paper();
    let mut t = 0;
    rd(&mut l2, &mut bus, &mut t, 0, 7);
    rd(&mut l2, &mut bus, &mut t, 1, 7);
    assert_eq!(l2.data_copies(BlockAddr(7)), 2, "uncontrolled replication copies on first use");
    assert_eq!(l2.stats().pointer_transfers, 0);
    assert_eq!(l2.stats().replications, 1);
}

#[test]
fn all_four_cores_can_share_one_copy() {
    let (mut l2, mut bus, mut t) = paper_cache();
    rd(&mut l2, &mut bus, &mut t, 0, 7);
    for c in 1..4 {
        rd(&mut l2, &mut bus, &mut t, c, 7);
    }
    assert_eq!(l2.data_copies(BlockAddr(7)), 1);
    assert_eq!(l2.stats().pointer_transfers, 3);
}

// ---- in-situ communication (Section 3.2) -----------------------------------

#[test]
fn isc_read_of_dirty_block_joins_c_and_relocates() {
    let (mut l2, mut bus, mut t) = paper_cache();
    wr(&mut l2, &mut bus, &mut t, 0, 9); // P0: M, d-group a
    let miss = rd(&mut l2, &mut bus, &mut t, 1, 9);
    assert_eq!(miss.class, AccessClass::MissRws);
    assert_eq!(l2.state_of(CoreId(0), BlockAddr(9)), MesicState::Communication);
    assert_eq!(l2.state_of(CoreId(1), BlockAddr(9)), MesicState::Communication);
    // The copy moved close to the reader (Section 3.2).
    assert_eq!(l2.dgroup_of(CoreId(1), BlockAddr(9)), Some(DGroupId(1)));
    assert_eq!(l2.dgroup_of(CoreId(0), BlockAddr(9)), Some(DGroupId(1)));
    assert_eq!(l2.data_copies(BlockAddr(9)), 1);
}

#[test]
fn isc_eliminates_coherence_misses_on_ping_pong() {
    let (mut l2, mut bus, mut t) = paper_cache();
    wr(&mut l2, &mut bus, &mut t, 0, 9);
    rd(&mut l2, &mut bus, &mut t, 1, 9); // one RWS miss to set up C
    let rws_before = l2.stats().miss_rws;
    for _ in 0..10 {
        let w = wr(&mut l2, &mut bus, &mut t, 0, 9);
        assert!(w.class.is_hit(), "writer hits in C");
        assert!(w.writethrough, "C blocks are write-through in L1");
        let r = rd(&mut l2, &mut bus, &mut t, 1, 9);
        assert!(r.class.is_hit(), "reader hits in C");
        assert_eq!(r.latency, 11, "reader enjoys closest-d-group latency");
    }
    assert_eq!(l2.stats().miss_rws, rws_before, "no further coherence misses");
}

#[test]
fn isc_writer_pays_farther_dgroup_on_each_write() {
    // The copy stays close to the reader; the writer reaches across
    // (this is why ISC shows more farther-d-group accesses, Fig. 9).
    let (mut l2, mut bus, mut t) = paper_cache();
    wr(&mut l2, &mut bus, &mut t, 0, 9);
    rd(&mut l2, &mut bus, &mut t, 1, 9);
    let w = wr(&mut l2, &mut bus, &mut t, 0, 9);
    assert_eq!(w.class, AccessClass::Hit { closest: false });
    // tag (5) + d-group b from P0 (20).
    assert_eq!(w.latency, 25);
}

#[test]
fn isc_write_to_c_invalidates_remote_l1_copies() {
    let (mut l2, mut bus, mut t) = paper_cache();
    wr(&mut l2, &mut bus, &mut t, 0, 9);
    rd(&mut l2, &mut bus, &mut t, 1, 9);
    rd(&mut l2, &mut bus, &mut t, 2, 9);
    let before = bus.stats().count(BusTx::BusRdX);
    let w = wr(&mut l2, &mut bus, &mut t, 0, 9);
    assert_eq!(bus.stats().count(BusTx::BusRdX), before + 1, "C writes broadcast BusRdX");
    let mut cores: Vec<_> = w.l1_invalidate.iter().map(|(c, _)| c.index()).collect();
    cores.sort_unstable();
    assert_eq!(cores, vec![1, 2]);
}

#[test]
fn isc_write_miss_joins_in_place() {
    let (mut l2, mut bus, mut t) = paper_cache();
    wr(&mut l2, &mut bus, &mut t, 0, 9);
    rd(&mut l2, &mut bus, &mut t, 1, 9); // copy now in d-group b
    let w = wr(&mut l2, &mut bus, &mut t, 2, 9); // new writer joins
    assert_eq!(w.class, AccessClass::MissRws);
    assert_eq!(l2.state_of(CoreId(2), BlockAddr(9)), MesicState::Communication);
    // Copy stays close to the reader (d-group b), not the new writer.
    assert_eq!(l2.dgroup_of(CoreId(2), BlockAddr(9)), Some(DGroupId(1)));
    assert_eq!(l2.data_copies(BlockAddr(9)), 1);
}

#[test]
fn isc_disabled_falls_back_to_mesi_ping_pong() {
    let mut l2 = CmpNurapid::new(NurapidConfig::paper_cr_only());
    let mut bus = Bus::paper();
    let mut t = 0;
    wr(&mut l2, &mut bus, &mut t, 0, 9);
    let r = rd(&mut l2, &mut bus, &mut t, 1, 9);
    assert_eq!(r.class, AccessClass::MissRws);
    // Dirty holder was flushed and demoted to S; no C state anywhere.
    assert_eq!(l2.state_of(CoreId(0), BlockAddr(9)), MesicState::Shared);
    assert_eq!(l2.state_of(CoreId(1), BlockAddr(9)), MesicState::Shared);
    // Writing again invalidates the reader: a coherence miss next round.
    wr(&mut l2, &mut bus, &mut t, 0, 9);
    assert_eq!(l2.state_of(CoreId(1), BlockAddr(9)), MesicState::Invalid);
    let r2 = rd(&mut l2, &mut bus, &mut t, 1, 9);
    assert_eq!(r2.class, AccessClass::MissRws);
}

// ---- shared-write upgrades --------------------------------------------------

#[test]
fn shared_write_upgrade_invalidates_other_tags() {
    let (mut l2, mut bus, mut t) = paper_cache();
    rd(&mut l2, &mut bus, &mut t, 0, 7);
    rd(&mut l2, &mut bus, &mut t, 1, 7); // CR pointer
    let w = wr(&mut l2, &mut bus, &mut t, 0, 7);
    assert!(w.class.is_hit());
    assert_eq!(l2.state_of(CoreId(0), BlockAddr(7)), MesicState::Modified);
    assert_eq!(l2.state_of(CoreId(1), BlockAddr(7)), MesicState::Invalid);
    assert!(w.l1_invalidate.contains(&(CoreId(1), BlockAddr(7))));
    assert_eq!(l2.data_copies(BlockAddr(7)), 1);
}

#[test]
fn shared_write_by_pointer_holder_takes_frame_ownership() {
    let (mut l2, mut bus, mut t) = paper_cache();
    rd(&mut l2, &mut bus, &mut t, 0, 7); // P0 owns the copy in d-group a
    rd(&mut l2, &mut bus, &mut t, 1, 7); // P1: tag-only pointer
    wr(&mut l2, &mut bus, &mut t, 1, 7); // P1 upgrades: takes over the frame
    assert_eq!(l2.state_of(CoreId(1), BlockAddr(7)), MesicState::Modified);
    assert_eq!(l2.state_of(CoreId(0), BlockAddr(7)), MesicState::Invalid);
    // The data is still in d-group a; the next P1 hit promotes it home.
    assert_eq!(l2.dgroup_of(CoreId(1), BlockAddr(7)), Some(DGroupId(0)));
    let hit = rd(&mut l2, &mut bus, &mut t, 1, 7);
    assert_eq!(hit.class, AccessClass::Hit { closest: false });
    assert_eq!(l2.dgroup_of(CoreId(1), BlockAddr(7)), Some(DGroupId(1)));
    assert_eq!(l2.stats().promotions, 1);
}

#[test]
fn shared_write_frees_duplicate_copies() {
    let (mut l2, mut bus, mut t) = paper_cache();
    rd(&mut l2, &mut bus, &mut t, 0, 7);
    rd(&mut l2, &mut bus, &mut t, 1, 7);
    rd(&mut l2, &mut bus, &mut t, 1, 7); // second use: P1 replicates
    assert_eq!(l2.data_copies(BlockAddr(7)), 2);
    wr(&mut l2, &mut bus, &mut t, 0, 7); // P0 upgrades
    assert_eq!(l2.data_copies(BlockAddr(7)), 1, "duplicate copy freed on upgrade");
}

#[test]
fn write_miss_over_clean_copies_takes_own_copy() {
    let (mut l2, mut bus, mut t) = paper_cache();
    rd(&mut l2, &mut bus, &mut t, 0, 7);
    let w = wr(&mut l2, &mut bus, &mut t, 3, 7);
    assert_eq!(w.class, AccessClass::MissRos, "clean copy existed");
    assert_eq!(l2.state_of(CoreId(3), BlockAddr(7)), MesicState::Modified);
    assert_eq!(l2.state_of(CoreId(0), BlockAddr(7)), MesicState::Invalid);
    assert_eq!(l2.data_copies(BlockAddr(7)), 1);
    assert_eq!(l2.dgroup_of(CoreId(3), BlockAddr(7)), Some(DGroupId(3)));
}

// ---- bus accounting ---------------------------------------------------------

#[test]
fn busrepl_goes_on_the_bus_when_shared_data_is_replaced() {
    // Tiny cache: 2 d-groups x 8 frames, 2-way tags.
    let mut l2 = CmpNurapid::new(NurapidConfig::tiny(2, 8 * 128));
    let mut bus = Bus::paper();
    let mut t = 0;
    // P0 brings in a block; P1 shares it (pointer).
    rd(&mut l2, &mut bus, &mut t, 0, 1);
    rd(&mut l2, &mut bus, &mut t, 1, 1);
    // Flood P0's d-group until the shared frame is evicted.
    let before = bus.stats().count(BusTx::BusRepl);
    for b in 0..64 {
        rd(&mut l2, &mut bus, &mut t, 0, 100 + b);
    }
    assert!(
        bus.stats().count(BusTx::BusRepl) > before,
        "shared replacement must broadcast BusRepl"
    );
    assert!(l2.stats().busrepl_invalidations > 0);
}

#[test]
fn stats_accumulate_consistently() {
    let (mut l2, mut bus, mut t) = paper_cache();
    for b in 0..32 {
        rd(&mut l2, &mut bus, &mut t, (b % 4) as u8, b);
        rd(&mut l2, &mut bus, &mut t, ((b + 1) % 4) as u8, b);
    }
    let s = l2.stats();
    assert_eq!(s.accesses(), 64);
    assert_eq!(s.hits() + s.misses(), 64);
    assert_eq!(s.miss_capacity, 32);
    assert_eq!(s.miss_ros, 32);
}

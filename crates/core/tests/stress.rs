//! Randomized stress tests: thousands of random accesses against
//! tiny, conflict-heavy configurations, with the full structural-
//! invariant checker run throughout.

use cmp_cache::CacheOrg;
use cmp_coherence::Bus;
use cmp_mem::{AccessKind, BlockAddr, CoreId, Rng};
use cmp_nurapid::{CmpNurapid, NurapidConfig};

fn run_stress(cfg: NurapidConfig, blocks: u64, steps: usize, seed: u64, check_every: usize) {
    let cores = cfg.cores;
    let mut l2 = CmpNurapid::new(cfg);
    let mut bus = Bus::paper();
    let mut rng = Rng::new(seed);
    let mut now = 0u64;
    for step in 0..steps {
        now += 1 + rng.gen_range(50);
        let core = CoreId(rng.gen_index(cores) as u8);
        let block = BlockAddr(rng.gen_range(blocks));
        let kind = if rng.gen_bool(0.3) { AccessKind::Write } else { AccessKind::Read };
        let resp = l2.access_collected(core, block, kind, now, &mut bus);
        assert!(resp.latency >= 1, "every access costs at least a cycle");
        if step % check_every == 0 {
            l2.check_invariants();
        }
    }
    l2.check_invariants();
    let s = l2.stats();
    assert_eq!(s.accesses(), steps as u64);
}

#[test]
fn stress_tiny_high_conflict() {
    // 4 cores x 8 frames, 64 hot blocks: constant replacement,
    // demotion, BusRepl, and sharing churn.
    run_stress(NurapidConfig::tiny(4, 8 * 128), 64, 30_000, 0xA5A5, 97);
}

#[test]
fn stress_tiny_exact_capacity() {
    // Working set exactly equals total frames: heavy stealing.
    run_stress(NurapidConfig::tiny(4, 8 * 128), 32, 30_000, 0xBEEF, 97);
}

#[test]
fn stress_small_sharing_heavy() {
    let mut cfg = NurapidConfig::tiny(4, 16 * 128);
    cfg.seed = 11;
    // Few blocks => almost everything is shared and read-write.
    run_stress(cfg, 8, 20_000, 0x1234, 53);
}

#[test]
fn stress_two_cores() {
    run_stress(NurapidConfig::tiny(2, 8 * 128), 48, 20_000, 0x7777, 101);
}

#[test]
fn stress_cr_only_configuration() {
    let mut cfg = NurapidConfig::tiny(4, 8 * 128);
    cfg.in_situ_communication = false;
    run_stress(cfg, 48, 20_000, 0x9999, 101);
}

#[test]
fn stress_isc_only_configuration() {
    let mut cfg = NurapidConfig::tiny(4, 8 * 128);
    cfg.controlled_replication = false;
    run_stress(cfg, 48, 20_000, 0xCAFE, 101);
}

#[test]
fn stress_next_fastest_promotion() {
    let mut cfg = NurapidConfig::tiny(4, 8 * 128);
    cfg.promotion = cmp_nurapid::PromotionPolicy::NextFastest;
    run_stress(cfg, 64, 20_000, 0xD00D, 101);
}

#[test]
fn stress_eight_cores() {
    // The structures are generic over the core count: 8 cores, 8
    // d-groups, greedy-staggered rankings.
    run_stress(NurapidConfig::tiny(8, 8 * 128), 96, 25_000, 0x8888, 101);
}

#[test]
fn stress_sixteen_cores() {
    run_stress(NurapidConfig::tiny(16, 4 * 128), 128, 20_000, 0x1616, 251);
}

#[test]
fn stress_c_collapse_high_conflict() {
    let mut cfg = NurapidConfig::tiny(4, 8 * 128);
    cfg.c_collapse = true;
    run_stress(cfg, 48, 25_000, 0xC0, 101);
}

#[test]
fn stress_naive_ranking() {
    let mut cfg = NurapidConfig::tiny(4, 8 * 128);
    cfg.staggered_ranking = false;
    run_stress(cfg, 64, 20_000, 0x99, 101);
}

#[test]
fn stress_single_core() {
    // Degenerate but legal: one core, one d-group — pure capacity
    // replacement, no sharing.
    run_stress(NurapidConfig::tiny(1, 8 * 128), 32, 10_000, 0xF00, 53);
}

#[test]
fn stress_undoubled_tags() {
    // Tag capacity factor 1: tags are the bottleneck, exercising the
    // non-owner tag-drop path heavily.
    let mut cfg = NurapidConfig::tiny(4, 8 * 128);
    cfg.tag_capacity_factor = 1;
    run_stress(cfg, 64, 20_000, 0xAB, 53);
}

#[test]
fn stress_quadrupled_tags() {
    let mut cfg = NurapidConfig::tiny(4, 8 * 128);
    cfg.tag_capacity_factor = 4;
    run_stress(cfg, 64, 20_000, 0xCD, 53);
}

#[test]
fn deterministic_across_runs() {
    // The whole simulator is deterministic: identical seeds produce
    // identical statistics.
    let run = || {
        let mut l2 = CmpNurapid::new(NurapidConfig::tiny(4, 8 * 128));
        let mut bus = Bus::paper();
        let mut rng = Rng::new(42);
        let mut now = 0;
        for _ in 0..5_000 {
            now += 1 + rng.gen_range(50);
            let core = CoreId(rng.gen_index(4) as u8);
            let block = BlockAddr(rng.gen_range(64));
            let kind = if rng.gen_bool(0.3) { AccessKind::Write } else { AccessKind::Read };
            l2.access_collected(core, block, kind, now, &mut bus);
        }
        let s = l2.stats();
        (s.hits(), s.miss_ros, s.miss_rws, s.miss_capacity, s.demotions, s.promotions)
    };
    assert_eq!(run(), run());
}

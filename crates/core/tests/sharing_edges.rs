//! Edge cases of the sharing machinery: multi-copy CR, nearest-copy
//! selection, write takeovers, and replacement interactions.

use cmp_cache::{AccessClass, CacheOrg};
use cmp_coherence::mesic::MesicState;
use cmp_coherence::{Bus, BusTx};
use cmp_mem::{AccessKind, BlockAddr, CoreId};
use cmp_nurapid::{CmpNurapid, DGroupId, NurapidConfig};

fn paper() -> (CmpNurapid, Bus, u64) {
    (CmpNurapid::new(NurapidConfig::paper()), Bus::paper(), 0)
}

fn rd(
    l2: &mut CmpNurapid,
    bus: &mut Bus,
    t: &mut u64,
    core: u8,
    block: u64,
) -> cmp_cache::CollectedResponse {
    *t += 1_000;
    let r = l2.access_collected(CoreId(core), BlockAddr(block), AccessKind::Read, *t, bus);
    l2.check_invariants();
    r
}

fn wr(
    l2: &mut CmpNurapid,
    bus: &mut Bus,
    t: &mut u64,
    core: u8,
    block: u64,
) -> cmp_cache::CollectedResponse {
    *t += 1_000;
    let r = l2.access_collected(CoreId(core), BlockAddr(block), AccessKind::Write, *t, bus);
    l2.check_invariants();
    r
}

#[test]
fn cr_pointer_targets_the_cheapest_copy() {
    // P0 and P1 both hold data copies of X (second-use replication).
    // When P3 takes a CR pointer it must point at the copy cheapest
    // for it: d-group b (20 cycles from P3's corner? no -- check via
    // latency book: from P3, d-group a is diagonal (33), b is lateral
    // (20)), so P3's pointer lands on P1's copy.
    let (mut l2, mut bus, mut t) = paper();
    rd(&mut l2, &mut bus, &mut t, 0, 7); // copy in a
    rd(&mut l2, &mut bus, &mut t, 1, 7); // pointer
    rd(&mut l2, &mut bus, &mut t, 1, 7); // replicate into b
    assert_eq!(l2.data_copies(BlockAddr(7)), 2);
    let miss = rd(&mut l2, &mut bus, &mut t, 3, 7);
    assert_eq!(miss.class, AccessClass::MissRos);
    // 5 (tag) + 32 (bus) + 20 (d-group b from P3) = 57, not 70 (a).
    assert_eq!(miss.latency, 57);
    assert_eq!(l2.dgroup_of(CoreId(3), BlockAddr(7)), Some(DGroupId(1)));
}

#[test]
fn all_cores_replicating_makes_four_copies() {
    let (mut l2, mut bus, mut t) = paper();
    for c in 0..4u8 {
        rd(&mut l2, &mut bus, &mut t, c, 7);
        rd(&mut l2, &mut bus, &mut t, c, 7); // second use each
    }
    assert_eq!(l2.data_copies(BlockAddr(7)), 4, "uncapped replication degree is n_cores");
    for c in 0..4u8 {
        let hit = rd(&mut l2, &mut bus, &mut t, c, 7);
        assert_eq!(hit.latency, 11, "everyone enjoys a local copy");
    }
}

#[test]
fn write_takeover_of_quadruply_shared_block() {
    let (mut l2, mut bus, mut t) = paper();
    for c in 0..4u8 {
        rd(&mut l2, &mut bus, &mut t, c, 7);
        rd(&mut l2, &mut bus, &mut t, c, 7);
    }
    let w = wr(&mut l2, &mut bus, &mut t, 2, 7);
    assert!(w.class.is_hit());
    assert_eq!(l2.data_copies(BlockAddr(7)), 1, "upgrade frees all duplicates");
    assert_eq!(l2.state_of(CoreId(2), BlockAddr(7)), MesicState::Modified);
    for c in [0u8, 1, 3] {
        assert_eq!(l2.state_of(CoreId(c), BlockAddr(7)), MesicState::Invalid);
        assert!(w.l1_invalidate.contains(&(CoreId(c), BlockAddr(7))));
    }
    // P2 keeps its own copy in its closest d-group.
    assert_eq!(l2.dgroup_of(CoreId(2), BlockAddr(7)), Some(DGroupId(2)));
}

#[test]
fn isc_relocation_follows_the_latest_reader() {
    let (mut l2, mut bus, mut t) = paper();
    wr(&mut l2, &mut bus, &mut t, 0, 9);
    rd(&mut l2, &mut bus, &mut t, 1, 9); // copy -> b
    assert_eq!(l2.dgroup_of(CoreId(0), BlockAddr(9)), Some(DGroupId(1)));
    // P2 now misses: the copy relocates again, to c, and every
    // sharer's pointer follows.
    rd(&mut l2, &mut bus, &mut t, 2, 9);
    for c in 0..3u8 {
        assert_eq!(l2.dgroup_of(CoreId(c), BlockAddr(9)), Some(DGroupId(2)), "P{c}");
        assert_eq!(l2.state_of(CoreId(c), BlockAddr(9)), MesicState::Communication);
    }
    assert_eq!(l2.data_copies(BlockAddr(9)), 1);
}

#[test]
fn c_hits_do_not_relocate() {
    let (mut l2, mut bus, mut t) = paper();
    wr(&mut l2, &mut bus, &mut t, 0, 9);
    rd(&mut l2, &mut bus, &mut t, 1, 9); // relocate to b
    for _ in 0..5 {
        rd(&mut l2, &mut bus, &mut t, 0, 9); // P0 reads from afar
        assert_eq!(
            l2.dgroup_of(CoreId(0), BlockAddr(9)),
            Some(DGroupId(1)),
            "C hits never move the copy"
        );
    }
}

#[test]
fn write_to_exclusive_block_is_silent() {
    let (mut l2, mut bus, mut t) = paper();
    rd(&mut l2, &mut bus, &mut t, 0, 11); // E
    let before = bus.stats().total();
    let w = wr(&mut l2, &mut bus, &mut t, 0, 11);
    assert_eq!(l2.state_of(CoreId(0), BlockAddr(11)), MesicState::Modified);
    assert_eq!(bus.stats().total(), before, "E->M is a silent upgrade");
    assert_eq!(w.latency, 11);
}

#[test]
fn capacity_miss_after_sharers_vanish() {
    // All tags for a block can disappear (write takeover then victim
    // pressure); a later read is a plain capacity miss again.
    let (mut l2, mut bus, mut t) = paper();
    rd(&mut l2, &mut bus, &mut t, 0, 13);
    wr(&mut l2, &mut bus, &mut t, 1, 13); // P1 takes over, P0 invalid
    assert_eq!(l2.state_of(CoreId(0), BlockAddr(13)), MesicState::Invalid);
    let back = rd(&mut l2, &mut bus, &mut t, 0, 13);
    assert_eq!(back.class, AccessClass::MissRws, "P1's copy is dirty (M)");
    assert_eq!(l2.state_of(CoreId(0), BlockAddr(13)), MesicState::Communication);
}

#[test]
fn busrepl_only_drops_tags_pointing_at_the_dying_frame() {
    // P0 owns a copy; P1 replicated its own. Evicting P0's frame must
    // leave P1's copy and tag alone (the paper's Section 3.1 note).
    let mut cfg = NurapidConfig::tiny(2, 8 * 128);
    cfg.seed = 123;
    let mut l2 = CmpNurapid::new(cfg);
    let mut bus = Bus::paper();
    let mut t = 0;
    rd(&mut l2, &mut bus, &mut t, 0, 1);
    rd(&mut l2, &mut bus, &mut t, 1, 1);
    rd(&mut l2, &mut bus, &mut t, 1, 1); // P1 replicates into its d-group
    assert_eq!(l2.data_copies(BlockAddr(1)), 2);
    // Flood P0's side until its copy of block 1 is evicted.
    let before = bus.stats().count(BusTx::BusRepl);
    for b in 0..200 {
        rd(&mut l2, &mut bus, &mut t, 0, 1_000 + b);
        if l2.dgroup_of(CoreId(0), BlockAddr(1)).is_none() {
            break;
        }
    }
    assert!(l2.dgroup_of(CoreId(0), BlockAddr(1)).is_none(), "P0's copy should be gone");
    assert!(bus.stats().count(BusTx::BusRepl) > before);
    // P1 still hits its own copy.
    let hit = rd(&mut l2, &mut bus, &mut t, 1, 1);
    assert!(hit.class.is_hit(), "P1's independent copy survives BusRepl");
}

#[test]
fn latencies_cover_the_full_dgroup_spectrum() {
    let (mut l2, mut bus, mut t) = paper();
    // Place a private block for P0 and demote nothing: closest = 11.
    rd(&mut l2, &mut bus, &mut t, 0, 21);
    assert_eq!(rd(&mut l2, &mut bus, &mut t, 0, 21).latency, 11);
    // A C copy read from the diagonal: 5 + 33 = 38.
    wr(&mut l2, &mut bus, &mut t, 3, 23); // P3: copy in d
    rd(&mut l2, &mut bus, &mut t, 0, 23); // relocates to a
    let far = rd(&mut l2, &mut bus, &mut t, 3, 23); // P3 reads from a: diagonal
    assert_eq!(far.latency, 38);
    assert_eq!(far.class, AccessClass::Hit { closest: false });
}

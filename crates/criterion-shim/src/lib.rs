//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset of criterion's API its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Timing is a plain wall-clock median over a fixed batch —
//! good enough to spot order-of-magnitude regressions, with zero
//! dependencies.
//!
//! Like real criterion, when the binary is run without `--bench`
//! (i.e. by `cargo test`, which executes `harness = false` bench
//! targets) every closure runs exactly once as a smoke test, so the
//! test suite stays fast.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Whether the process was launched by `cargo bench` (full timing) or
/// `cargo test` (single-iteration smoke mode).
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// The benchmark driver.
pub struct Criterion {
    measure: bool,
    /// Target measurement time per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measure: bench_mode(), budget: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { measure: self.measure, budget: self.budget, report: None };
        f(&mut b);
        match b.report {
            Some(ns) => println!("bench {name:<40} {:>12.1} ns/iter", ns),
            None => println!("bench {name:<40} ok (smoke)"),
        }
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { c: self }
    }
}

/// A group of related benchmarks (sample-size hints are accepted and
/// ignored; the shim's budget is already small).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.c.bench_function(name, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the
/// routine.
pub struct Bencher {
    measure: bool,
    budget: Duration,
    report: Option<f64>,
}

impl Bencher {
    /// Times `routine`. In smoke mode (under `cargo test`) the routine
    /// runs once; in bench mode it is repeated until the time budget
    /// is spent and the mean ns/iter is reported.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if !self.measure {
            std_black_box(routine());
            return;
        }
        // Warm-up and per-iteration estimate.
        let t0 = Instant::now();
        std_black_box(routine());
        let first = t0.elapsed();
        let iters = (self.budget.as_nanos() / first.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            std_black_box(routine());
        }
        let total = t1.elapsed();
        self.report = Some(total.as_nanos() as f64 / iters as f64);
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("shim_smoke", |b| b.iter(|| 2 + 2));
        let mut g = c.benchmark_group("shim_group");
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| black_box(1u64.wrapping_mul(3))));
        g.finish();
    }

    #[test]
    fn smoke_mode_runs_every_closure_once() {
        // Not launched via `--bench`, so this exercises smoke mode.
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    #[test]
    fn bench_mode_reports_timing() {
        let mut c = Criterion { measure: true, budget: Duration::from_millis(5) };
        let mut b = Bencher { measure: true, budget: c.budget, report: None };
        b.iter(|| black_box(7u64.wrapping_add(1)));
        assert!(b.report.is_some());
        c.bench_function("timed", |bb| bb.iter(|| 1 + 1));
    }
}

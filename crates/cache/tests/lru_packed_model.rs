//! The bit-packed [`LruOrder`] checked against the straightforward
//! `Vec`-based implementation it replaced, over random
//! touch/demote/rank sequences at every supported associativity.

use proptest::prelude::*;

use cmp_cache::lru::LruOrder;

/// The reference model: the pre-optimization representation, a vector
/// of ways ordered least- to most-recently used.
#[derive(Clone, Debug)]
struct VecLru {
    order: Vec<usize>,
}

impl VecLru {
    fn new(ways: usize) -> Self {
        VecLru { order: (0..ways).collect() }
    }

    fn touch(&mut self, way: usize) {
        self.order.retain(|w| *w != way);
        self.order.push(way);
    }

    fn demote(&mut self, way: usize) {
        self.order.retain(|w| *w != way);
        self.order.insert(0, way);
    }

    fn rank(&self, way: usize) -> usize {
        self.order.iter().position(|w| *w == way).expect("way present")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn packed_lru_agrees_with_vec_reference(
        ways in 1usize..33,
        ops in proptest::collection::vec((any::<bool>(), 0usize..32), 1..300),
    ) {
        let mut lru = LruOrder::new(ways);
        let mut model = VecLru::new(ways);
        for (is_touch, raw_way) in ops {
            let way = raw_way % ways;
            if is_touch {
                lru.touch(way);
                model.touch(way);
            } else {
                lru.demote(way);
                model.demote(way);
            }
            prop_assert_eq!(lru.least_recent(), model.order[0]);
            prop_assert_eq!(lru.most_recent(), *model.order.last().expect("nonempty"));
            for w in 0..ways {
                prop_assert_eq!(lru.rank(w), model.rank(w), "rank of way {}", w);
            }
            let order: Vec<usize> = lru.iter().collect();
            prop_assert_eq!(&order, &model.order);
        }
    }
}

//! The uniform-shared baseline (and the ideal cache).
//!
//! An 8 MB, 32-way shared L2 with a single copy per block: no
//! replication, no coherence misses at the L2 level (Figure 5's
//! shared bars show only hits and capacity misses). L1 coherence is
//! maintained directory-style with per-block L1 presence bits, as in
//! the commercial CMPs the paper cites (Piranha et al.): a write by
//! one core invalidates the other cores' L1 copies without a bus
//! transaction.
//!
//! The **ideal** cache of Section 5.1.1 — shared capacity at private
//! latency, the upper bound on CMP-NuRAPID's improvement — is the
//! same organization constructed with the private cache's latency.

use cmp_coherence::Bus;
use cmp_latency::LatencyBook;
use cmp_mem::{AccessKind, BlockAddr, CacheGeometry, CoreId, Cycle};

use crate::org::{AccessClass, AccessResponse, CacheOrg, InvalScratch, OrgStats};
use crate::tag_array::TagArray;

/// Per-block state: dirtiness and which cores' L1s hold copies.
#[derive(Clone, Debug, Default)]
struct SharedEntry {
    dirty: bool,
    l1_presence: u64,
}

/// A uniform-latency shared L2 cache.
///
/// # Example
///
/// ```
/// use cmp_cache::{CacheOrg, InvalScratch, UniformShared};
/// use cmp_coherence::Bus;
/// use cmp_latency::LatencyBook;
/// use cmp_mem::{AccessKind, BlockAddr, CoreId};
///
/// let book = LatencyBook::paper();
/// let mut l2 = UniformShared::paper_shared(&book);
/// let mut bus = Bus::paper();
/// let mut inv = InvalScratch::new();
/// let miss = l2.access(CoreId(0), BlockAddr(1), AccessKind::Read, 0, &mut bus, &mut inv);
/// let hit = l2.access(CoreId(1), BlockAddr(1), AccessKind::Read, 400, &mut bus, &mut inv);
/// assert!(miss.latency > hit.latency);
/// assert_eq!(hit.latency, 59);
/// ```
pub struct UniformShared {
    tags: TagArray<SharedEntry>,
    cores: usize,
    tag_latency: Cycle,
    hit_latency: Cycle,
    memory_latency: Cycle,
    name: &'static str,
    stats: OrgStats,
}

impl UniformShared {
    /// Creates a shared cache with explicit latencies.
    pub fn new(
        cores: usize,
        geom: CacheGeometry,
        tag_latency: Cycle,
        hit_latency: Cycle,
        memory_latency: Cycle,
        name: &'static str,
    ) -> Self {
        assert!(cores > 0 && cores <= 64, "cores must be in 1..=64");
        UniformShared {
            tags: TagArray::new(geom),
            cores,
            tag_latency,
            hit_latency,
            memory_latency,
            name,
            stats: OrgStats::default(),
        }
    }

    /// The paper's uniform-shared configuration: 8 MB, 32-way, 59-cycle
    /// hits (Table 1).
    pub fn paper_shared(book: &LatencyBook) -> Self {
        UniformShared::new(
            book.cores(),
            CacheGeometry::new(cmp_mem::L2_TOTAL_BYTES, cmp_mem::L2_BLOCK_BYTES, 32),
            book.shared_tag,
            book.shared_total,
            book.memory,
            "shared",
        )
    }

    /// The ideal cache: shared capacity at private latency
    /// (Section 5.1.1's upper bound).
    pub fn paper_ideal(book: &LatencyBook) -> Self {
        UniformShared::new(
            book.cores(),
            CacheGeometry::new(cmp_mem::L2_TOTAL_BYTES, cmp_mem::L2_BLOCK_BYTES, 32),
            book.private_tag,
            book.ideal_total,
            book.memory,
            "ideal",
        )
    }

    /// The paper's shared organization at an explicit total capacity
    /// (scenario-spec machines scale capacity with the core count;
    /// [`UniformShared::paper_shared`] keeps the fixed 8 MB).
    pub fn sized_shared(book: &LatencyBook, total_bytes: usize) -> Self {
        UniformShared::new(
            book.cores(),
            CacheGeometry::new(total_bytes, cmp_mem::L2_BLOCK_BYTES, 32),
            book.shared_tag,
            book.shared_total,
            book.memory,
            "shared",
        )
    }

    /// The ideal organization at an explicit total capacity.
    pub fn sized_ideal(book: &LatencyBook, total_bytes: usize) -> Self {
        UniformShared::new(
            book.cores(),
            CacheGeometry::new(total_bytes, cmp_mem::L2_BLOCK_BYTES, 32),
            book.private_tag,
            book.ideal_total,
            book.memory,
            "ideal",
        )
    }

    fn core_bit(core: CoreId) -> u64 {
        1 << core.index()
    }
}

impl CacheOrg for UniformShared {
    fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    fn access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        _now: Cycle,
        _bus: &mut Bus,
        inv: &mut InvalScratch,
    ) -> AccessResponse {
        inv.begin();
        let set = self.tags.set_of(block);
        let resp;
        if let Some(way) = self.tags.lookup(block) {
            self.tags.touch(set, way);
            resp = AccessResponse::simple(self.hit_latency, AccessClass::Hit { closest: true });
            let entry = self.tags.entry_mut(set, way).expect("hit entry exists");
            if kind.is_write() {
                entry.payload.dirty = true;
                // Directory-style L1 coherence: invalidate every other
                // core's L1 copy.
                let others = entry.payload.l1_presence & !Self::core_bit(core);
                entry.payload.l1_presence &= !others;
                for c in CoreId::all(self.cores) {
                    if others & Self::core_bit(c) != 0 {
                        inv.push(c, block);
                    }
                }
            }
            entry.payload.l1_presence |= Self::core_bit(core);
        } else {
            // Miss: single copy per block, so every miss is capacity
            // (or cold) by construction.
            resp = AccessResponse::simple(
                self.tag_latency + self.memory_latency,
                AccessClass::MissCapacity,
            );
            let victim_way = self.tags.victim_by(set, |e| u32::from(e.is_some()));
            if let Some((victim_block, payload)) = self.tags.evict(set, victim_way) {
                if payload.dirty {
                    self.stats.writebacks += 1;
                }
                // Inclusion: L1 copies of the victim must go.
                for c in CoreId::all(self.cores) {
                    if payload.l1_presence & Self::core_bit(c) != 0 {
                        inv.push(c, victim_block);
                    }
                }
            }
            self.tags.fill(
                set,
                victim_way,
                block,
                SharedEntry { dirty: kind.is_write(), l1_presence: Self::core_bit(core) },
            );
        }
        self.stats.l1_invalidations += inv.len() as u64;
        self.stats.record_class(resp.class);
        resp
    }

    fn stats(&self) -> &OrgStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OrgStats::default();
    }

    fn cores(&self) -> usize {
        self.cores
    }
}

impl std::fmt::Debug for UniformShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UniformShared")
            .field("name", &self.name)
            .field("hit_latency", &self.hit_latency)
            .field("occupied", &self.tags.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> UniformShared {
        // 4 sets x 2 ways of 128 B blocks = 1 KB.
        UniformShared::new(4, CacheGeometry::new(1024, 128, 2), 26, 59, 300, "shared")
    }

    use crate::org::CollectedResponse;

    fn rd(l2: &mut UniformShared, core: u8, block: u64) -> CollectedResponse {
        let mut bus = Bus::paper();
        l2.access_collected(CoreId(core), BlockAddr(block), AccessKind::Read, 0, &mut bus)
    }

    fn wr(l2: &mut UniformShared, core: u8, block: u64) -> CollectedResponse {
        let mut bus = Bus::paper();
        l2.access_collected(CoreId(core), BlockAddr(block), AccessKind::Write, 0, &mut bus)
    }

    #[test]
    fn miss_then_hit_latencies() {
        let mut l2 = tiny();
        let miss = rd(&mut l2, 0, 1);
        assert_eq!(miss.latency, 26 + 300);
        assert_eq!(miss.class, AccessClass::MissCapacity);
        let hit = rd(&mut l2, 0, 1);
        assert_eq!(hit.latency, 59);
        assert!(hit.class.is_hit());
    }

    #[test]
    fn sharing_reads_hit_without_coherence_misses() {
        let mut l2 = tiny();
        rd(&mut l2, 0, 1);
        let hit = rd(&mut l2, 3, 1);
        assert!(hit.class.is_hit(), "single shared copy serves every core");
        assert_eq!(l2.stats().miss_ros + l2.stats().miss_rws, 0);
    }

    #[test]
    fn write_invalidates_other_l1_copies() {
        let mut l2 = tiny();
        rd(&mut l2, 0, 1);
        rd(&mut l2, 1, 1);
        rd(&mut l2, 2, 1);
        let w = wr(&mut l2, 0, 1);
        let mut cores: Vec<_> = w.l1_invalidate.iter().map(|(c, _)| c.index()).collect();
        cores.sort_unstable();
        assert_eq!(cores, vec![1, 2]);
    }

    #[test]
    fn repeated_writes_by_same_core_invalidate_nothing() {
        let mut l2 = tiny();
        wr(&mut l2, 0, 1);
        let w = wr(&mut l2, 0, 1);
        assert!(w.l1_invalidate.is_empty());
    }

    #[test]
    fn eviction_invalidates_l1_copies_and_writes_back_dirty() {
        let mut l2 = tiny();
        // Fill set with two conflicting blocks; blocks 1, 5, 9 share a
        // set in a 4-set array.
        wr(&mut l2, 0, 1);
        rd(&mut l2, 1, 5);
        let resp = rd(&mut l2, 2, 9); // evicts LRU = block 1 (dirty)
        assert!(resp.l1_invalidate.contains(&(CoreId(0), BlockAddr(1))));
        assert_eq!(l2.stats().writebacks, 1);
    }

    #[test]
    fn ideal_uses_private_latency() {
        let book = LatencyBook::paper();
        let mut ideal = UniformShared::paper_ideal(&book);
        let mut bus = Bus::paper();
        let mut inv = InvalScratch::new();
        ideal.access(CoreId(0), BlockAddr(1), AccessKind::Read, 0, &mut bus, &mut inv);
        let hit = ideal.access(CoreId(0), BlockAddr(1), AccessKind::Read, 0, &mut bus, &mut inv);
        assert_eq!(hit.latency, 10);
        assert_eq!(ideal.name(), "ideal");
    }

    #[test]
    fn paper_capacity_is_8mb() {
        let book = LatencyBook::paper();
        let l2 = UniformShared::paper_shared(&book);
        assert_eq!(l2.tags.geometry().capacity_bytes(), 8 * 1024 * 1024);
        assert_eq!(l2.tags.geometry().associativity(), 32);
        assert_eq!(l2.cores(), 4);
    }
}

//! CMP-DNUCA: the *dynamic* non-uniform shared baseline the paper
//! deliberately leaves out.
//!
//! Beckmann & Wood's CMP-DNUCA lets a block migrate among the banks
//! of its bankset, moving gradually toward whoever hits it. The ISCA
//! 2005 paper cites their result — "realistic CMP-DNUCA performs
//! worse than CMP-SNUCA" — as the reason it only evaluates SNUCA, and
//! explains why: with multiple sharers, "each sharer pulls the block
//! toward it, leaving the block in the middle, far away from all the
//! sharers" (Section 1). This implementation exists to reproduce that
//! justification (see the `dnuca` experiment binary).
//!
//! Model: the 16 banks form 4 column banksets; a block maps to a
//! bankset by address interleave and may live in any of its 4 banks.
//! Lookups search the bankset's banks from the requestor's nearest
//! outward (incremental search: each probed bank's latency
//! accumulates); a hit migrates the block one bank closer to the
//! requestor by swapping with the target bank's LRU victim in the
//! same set.

use cmp_coherence::Bus;
use cmp_latency::{LatencyBook, SnucaLatencies};
use cmp_mem::{AccessKind, BlockAddr, CacheGeometry, CoreId, Cycle};

use crate::org::{AccessClass, AccessResponse, CacheOrg, InvalScratch, OrgStats};
use crate::tag_array::TagArray;

#[derive(Clone, Debug, Default)]
struct DnucaEntry {
    dirty: bool,
    l1_presence: u64,
}

/// The dynamic-NUCA shared L2 (migration enabled).
///
/// # Example
///
/// ```
/// use cmp_cache::{CacheOrg, Dnuca, InvalScratch};
/// use cmp_coherence::Bus;
/// use cmp_latency::LatencyBook;
/// use cmp_mem::{AccessKind, BlockAddr, CoreId};
///
/// let mut l2 = Dnuca::paper(&LatencyBook::paper());
/// let mut bus = Bus::paper();
/// let mut inv = InvalScratch::new();
/// l2.access(CoreId(0), BlockAddr(0), AccessKind::Read, 0, &mut bus, &mut inv);
/// let first = l2.access(CoreId(0), BlockAddr(0), AccessKind::Read, 1_000, &mut bus, &mut inv);
/// let later = {
///     for t in 0..4 {
///         l2.access(CoreId(0), BlockAddr(0), AccessKind::Read, 2_000 + t * 1_000, &mut bus, &mut inv);
///     }
///     l2.access(CoreId(0), BlockAddr(0), AccessKind::Read, 9_000, &mut bus, &mut inv)
/// };
/// assert!(later.latency <= first.latency, "migration pulls the block closer");
/// ```
pub struct Dnuca {
    /// One tag array per bank; `banks[b]` is bank `b` of the grid,
    /// laid out row-major `columns` wide.
    banks: Vec<TagArray<DnucaEntry>>,
    latencies: SnucaLatencies,
    /// Number of column banksets (the bank grid's width; 4 at paper
    /// scale, where each column holds 4 banks).
    columns: usize,
    cores: usize,
    memory_latency: Cycle,
    stats: OrgStats,
}

impl Dnuca {
    /// The paper-scale configuration: 8 MB in 16 banks of 512 KB,
    /// 4 column banksets.
    pub fn paper(book: &LatencyBook) -> Self {
        Self::sized(book, cmp_mem::L2_TOTAL_BYTES)
    }

    /// The dynamic-NUCA organization at an explicit total capacity.
    /// The bank grid is taken from `book.snuca` (twice the d-group
    /// floorplan in each dimension), so the column-bankset layout
    /// follows the machine size; capacity divides evenly over the
    /// banks.
    pub fn sized(book: &LatencyBook, total_bytes: usize) -> Self {
        let (cols, _) = cmp_latency::Floorplan::paper(book.cores()).dims();
        let columns = 2 * cols;
        let bank_count = book.snuca.banks();
        assert!(
            total_bytes.is_multiple_of(bank_count),
            "capacity must divide over {bank_count} banks"
        );
        let bank_geom = CacheGeometry::new(total_bytes / bank_count, cmp_mem::L2_BLOCK_BYTES, 8);
        Dnuca {
            banks: (0..bank_count).map(|_| TagArray::new(bank_geom)).collect(),
            latencies: book.snuca.clone(),
            columns,
            cores: book.cores(),
            memory_latency: book.memory,
            stats: OrgStats::default(),
        }
    }

    fn core_bit(core: CoreId) -> u64 {
        1 << core.index()
    }

    /// The bankset (column) a block maps to.
    fn column_of(&self, block: BlockAddr) -> usize {
        (block.0 as usize) % self.columns
    }

    /// The column's banks ordered nearest-first for `core`.
    fn search_order(&self, core: CoreId, column: usize) -> Vec<usize> {
        let rows = self.banks.len() / self.columns;
        let mut banks: Vec<usize> = (0..rows).map(|row| column + self.columns * row).collect();
        banks.sort_by_key(|&b| self.latencies.latency(core, b));
        banks
    }

    /// Finds the block in its bankset; returns `(search order, found
    /// position/bank/way, search latency)`.
    ///
    /// Hits pay the incremental search: the probe latencies of every
    /// bank tried up to and including the hit. Misses pay only the
    /// farthest bank's latency — the partial-tag "smart search" of
    /// Beckmann & Wood resolves a definite miss with one overlapped
    /// sweep rather than four serial probes.
    fn search(
        &self,
        core: CoreId,
        block: BlockAddr,
    ) -> (Vec<usize>, Option<(usize, usize, usize)>, Cycle) {
        let order = self.search_order(core, self.column_of(block));
        let mut latency = 0;
        for (pos, &bank) in order.iter().enumerate() {
            latency += self.latencies.latency(core, bank);
            if let Some(way) = self.banks[bank].lookup(block) {
                return (order, Some((pos, bank, way)), latency);
            }
        }
        let sweep = order.iter().map(|&b| self.latencies.latency(core, b)).max().unwrap_or(0);
        (order, None, sweep)
    }

    /// Gradual migration: swap `block` from `from_bank` into the LRU
    /// way of the same set in `to_bank` (and move that victim the
    /// other way), mimicking the bank-swap of D-NUCA.
    fn migrate(&mut self, block: BlockAddr, from_bank: usize, to_bank: usize) {
        let from_set = self.banks[from_bank].set_of(block);
        let from_way = self.banks[from_bank].lookup(block).expect("migrating a resident block");
        let (b, payload) = self.banks[from_bank].evict(from_set, from_way).expect("resident");
        debug_assert_eq!(b, block);
        let to_set = self.banks[to_bank].set_of(block);
        let victim_way = self.banks[to_bank].victim_by(to_set, |e| u32::from(e.is_some()));
        if let Some((victim_block, victim_payload)) = self.banks[to_bank].evict(to_set, victim_way)
        {
            // The displaced block takes the vacated slot in the old
            // bank (a swap, so nothing leaves the cache).
            let back_set = self.banks[from_bank].set_of(victim_block);
            let back_way = self.banks[from_bank].victim_by(back_set, |e| u32::from(e.is_some()));
            if let Some((evicted, evicted_payload)) =
                self.banks[from_bank].evict(back_set, back_way)
            {
                // Rare: the swap-back displaced a third block; it
                // falls out of the cache entirely.
                let _ = evicted;
                if evicted_payload.dirty {
                    self.stats.writebacks += 1;
                }
            }
            self.banks[from_bank].fill(back_set, back_way, victim_block, victim_payload);
        }
        self.banks[to_bank].fill(to_set, victim_way, block, payload);
        self.stats.promotions += 1; // migrations counted as promotions
    }
}

impl CacheOrg for Dnuca {
    fn name(&self) -> &'static str {
        "dnuca"
    }

    #[inline]
    fn access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        _now: Cycle,
        _bus: &mut Bus,
        inv: &mut InvalScratch,
    ) -> AccessResponse {
        inv.begin();
        let (order, found, search_latency) = self.search(core, block);
        let resp;
        if let Some((pos, bank, way)) = found {
            let set = self.banks[bank].set_of(block);
            self.banks[bank].touch(set, way);
            resp = AccessResponse::simple(search_latency, AccessClass::Hit { closest: pos == 0 });
            {
                let entry = self.banks[bank].entry_mut(set, way).expect("hit entry");
                if kind.is_write() {
                    entry.payload.dirty = true;
                    let others = entry.payload.l1_presence & !Self::core_bit(core);
                    entry.payload.l1_presence &= !others;
                    for c in CoreId::all(self.cores) {
                        if others & Self::core_bit(c) != 0 {
                            inv.push(c, block);
                        }
                    }
                }
                entry.payload.l1_presence |= Self::core_bit(core);
            }
            if pos > 0 {
                // Gradual migration one bank closer to this requestor.
                self.migrate(block, bank, order[pos - 1]);
            }
        } else {
            resp = AccessResponse::simple(
                search_latency + self.memory_latency,
                AccessClass::MissCapacity,
            );
            // Fill into the requestor's nearest bank of the bankset.
            let bank = order[0];
            let set = self.banks[bank].set_of(block);
            let way = self.banks[bank].victim_by(set, |e| u32::from(e.is_some()));
            if let Some((victim_block, payload)) = self.banks[bank].evict(set, way) {
                if payload.dirty {
                    self.stats.writebacks += 1;
                }
                for c in CoreId::all(self.cores) {
                    if payload.l1_presence & Self::core_bit(c) != 0 {
                        inv.push(c, victim_block);
                    }
                }
            }
            self.banks[bank].fill(
                set,
                way,
                block,
                DnucaEntry { dirty: kind.is_write(), l1_presence: Self::core_bit(core) },
            );
        }
        self.stats.l1_invalidations += inv.len() as u64;
        self.stats.record_class(resp.class);
        resp
    }

    fn stats(&self) -> &OrgStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OrgStats::default();
    }

    fn cores(&self) -> usize {
        self.cores
    }
}

impl std::fmt::Debug for Dnuca {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dnuca")
            .field("banks", &self.banks.len())
            .field("occupied", &self.banks.iter().map(TagArray::len).sum::<usize>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_dnuca() -> (Dnuca, Bus, u64) {
        (Dnuca::paper(&LatencyBook::paper()), Bus::paper(), 0)
    }

    use crate::org::CollectedResponse;

    fn rd(l2: &mut Dnuca, bus: &mut Bus, t: &mut u64, core: u8, block: u64) -> CollectedResponse {
        *t += 1_000;
        l2.access_collected(CoreId(core), BlockAddr(block), AccessKind::Read, *t, bus)
    }

    #[test]
    fn repeated_hits_migrate_the_block_closer() {
        let (mut l2, mut bus, mut t) = paper_dnuca();
        rd(&mut l2, &mut bus, &mut t, 0, 77); // cold fill already nearest
                                              // Fill lands nearest already; push it away by making P3 hit it.
        for _ in 0..6 {
            rd(&mut l2, &mut bus, &mut t, 3, 77);
        }
        // P3's repeated hits must have shortened P3's latency to the
        // floor (its nearest bank of the bankset).
        let final_hit = rd(&mut l2, &mut bus, &mut t, 3, 77);
        assert_eq!(final_hit.class, AccessClass::Hit { closest: true });
    }

    #[test]
    fn migration_latency_is_monotone_for_a_lone_user() {
        let (mut l2, mut bus, mut t) = paper_dnuca();
        rd(&mut l2, &mut bus, &mut t, 2, 40); // P2 cold fill
                                              // P1 starts hitting it from the other corner.
        let mut last = u64::MAX;
        for _ in 0..6 {
            let hit = rd(&mut l2, &mut bus, &mut t, 1, 40);
            assert!(hit.latency <= last, "latency must not regress: {} > {last}", hit.latency);
            last = hit.latency;
        }
        let settled = rd(&mut l2, &mut bus, &mut t, 1, 40);
        assert_eq!(settled.class, AccessClass::Hit { closest: true });
    }

    #[test]
    fn contested_blocks_ping_pong_between_sharers() {
        // The paper's Section 1 claim: sharers pull the block back and
        // forth, so neither ends up with closest-bank hits on average.
        let (mut l2, mut bus, mut t) = paper_dnuca();
        rd(&mut l2, &mut bus, &mut t, 0, 8);
        let mut closest_hits = 0u32;
        const ROUNDS: u32 = 40;
        for _ in 0..ROUNDS {
            // P0 and P3 sit in opposite corners; they alternate.
            if rd(&mut l2, &mut bus, &mut t, 0, 8).class == (AccessClass::Hit { closest: true }) {
                closest_hits += 1;
            }
            if rd(&mut l2, &mut bus, &mut t, 3, 8).class == (AccessClass::Hit { closest: true }) {
                closest_hits += 1;
            }
        }
        assert!(
            closest_hits < ROUNDS,
            "a contested block must not serve mostly closest-bank hits ({closest_hits}/{})",
            2 * ROUNDS
        );
    }

    #[test]
    fn blocks_never_leave_their_bankset() {
        let (mut l2, mut bus, mut t) = paper_dnuca();
        rd(&mut l2, &mut bus, &mut t, 0, 13); // column 1
        for c in [1u8, 2, 3, 0] {
            rd(&mut l2, &mut bus, &mut t, c, 13);
        }
        let col = l2.column_of(BlockAddr(13));
        let resident: Vec<usize> =
            (0..16).filter(|&b| l2.banks[b].lookup(BlockAddr(13)).is_some()).collect();
        assert_eq!(resident.len(), 1, "exactly one copy");
        assert_eq!(resident[0] % l2.columns, col, "still in its column bankset");
    }

    #[test]
    fn misses_are_capacity_only() {
        let (mut l2, mut bus, mut t) = paper_dnuca();
        let miss = rd(&mut l2, &mut bus, &mut t, 0, 99);
        assert_eq!(miss.class, AccessClass::MissCapacity);
        assert!(miss.latency > 300, "miss pays the search plus memory");
        assert_eq!(l2.stats().miss_ros + l2.stats().miss_rws, 0);
    }

    #[test]
    fn search_reaches_farther_banks_at_higher_cost() {
        let (mut l2, mut bus, mut t) = paper_dnuca();
        rd(&mut l2, &mut bus, &mut t, 0, 16); // P0 fills its nearest bank, column 0
                                              // P3 finds it only after probing its own closer banks first.
        let hit = rd(&mut l2, &mut bus, &mut t, 3, 16);
        assert!(hit.class.is_hit());
        let p3_nearest = l2.search_order(CoreId(3), 0)[0];
        assert!(
            hit.latency > l2.latencies.latency(CoreId(3), p3_nearest),
            "incremental search accumulates probe latency"
        );
    }

    #[test]
    fn write_invalidates_remote_l1_copies() {
        let (mut l2, mut bus, mut t) = paper_dnuca();
        rd(&mut l2, &mut bus, &mut t, 0, 24);
        rd(&mut l2, &mut bus, &mut t, 1, 24);
        t += 1_000;
        let w = l2.access_collected(CoreId(0), BlockAddr(24), AccessKind::Write, t, &mut bus);
        assert!(w.l1_invalidate.iter().any(|(c, b)| *c == CoreId(1) && *b == BlockAddr(24)));
    }
}

#![warn(missing_docs)]

//! Cache structures and baseline L2 organizations.
//!
//! This crate provides the building blocks every cache organization in
//! the reproduction is made of, and the four baselines the paper
//! compares CMP-NuRAPID against:
//!
//! * [`lru`] — per-set true-LRU recency tracking;
//! * [`tag_array`] — a generic set-associative tag array with
//!   pluggable per-entry payloads and caller-controlled victim
//!   selection;
//! * [`org`] — the [`CacheOrg`] trait the system simulator drives,
//!   plus the access classification ([`AccessClass`]) and statistics
//!   ([`OrgStats`]) shared by every organization; the trait also
//!   carries the audit hooks (`try_access`, `audit`,
//!   `inject_tag_fault`) the `cmp-audit` harness drives;
//! * [`violation`] — the structured [`Violation`] record those hooks
//!   report instead of panicking;
//! * [`shared`] — the **uniform-shared** 8 MB cache (59-cycle hits)
//!   and the **ideal** cache (shared capacity at private latency,
//!   Section 5.1.1's upper bound);
//! * [`private_mesi`] — four **private** 2 MB caches kept coherent
//!   with snoopy MESI, including the Figure 7 reuse trackers;
//! * [`snuca`] — **CMP-SNUCA**, the non-uniform-shared banked
//!   baseline from Beckmann & Wood;
//! * [`dnuca`] — **CMP-DNUCA** with gradual migration, implemented to
//!   reproduce the paper's justification for excluding it (sharers
//!   drag the block to the middle);
//! * [`cnuca`] — **CMP-CNUCA**, a compressed banked shared cache
//!   (YACC-style, arXiv:2201.00774) reachable from scenario specs.

pub mod cnuca;
pub mod dnuca;
pub mod lru;
pub mod org;
pub mod private_mesi;
pub mod shared;
pub mod snuca;
pub mod tag_array;
pub mod violation;

pub use cnuca::Cnuca;
pub use dnuca::Dnuca;
pub use org::{AccessClass, AccessResponse, CacheOrg, CollectedResponse, InvalScratch, OrgStats};
pub use private_mesi::PrivateMesi;
pub use shared::UniformShared;
pub use snuca::Snuca;
pub use tag_array::TagArray;
pub use violation::Violation;

//! True-LRU recency tracking for one cache set.

/// Recency order over the ways of one set: index 0 is the least
/// recently used way, the last index the most recently used.
///
/// `O(associativity)` per operation, which is fine at the paper's
/// associativities (≤ 32) and keeps the structure trivially correct.
///
/// # Example
///
/// ```
/// use cmp_cache::lru::LruOrder;
///
/// let mut lru = LruOrder::new(4);
/// lru.touch(2);
/// assert_eq!(lru.most_recent(), 2);
/// assert_ne!(lru.least_recent(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LruOrder {
    /// Way indices, LRU first.
    order: Vec<u8>,
}

impl LruOrder {
    /// Creates an order over `ways` ways; initially way 0 is LRU.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds 256.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0 && ways <= 256, "ways must be in 1..=256");
        LruOrder { order: (0..ways as u8).collect() }
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> usize {
        self.order.len()
    }

    /// Marks `way` most recently used.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn touch(&mut self, way: usize) {
        let pos = self.position(way);
        let w = self.order.remove(pos);
        self.order.push(w);
    }

    /// Marks `way` least recently used (used when an entry is
    /// invalidated, so the slot is preferred for the next fill).
    pub fn demote(&mut self, way: usize) {
        let pos = self.position(way);
        let w = self.order.remove(pos);
        self.order.insert(0, w);
    }

    /// The least recently used way.
    pub fn least_recent(&self) -> usize {
        self.order[0] as usize
    }

    /// The most recently used way.
    pub fn most_recent(&self) -> usize {
        *self.order.last().expect("order is nonempty") as usize
    }

    /// Recency rank of `way`: 0 = LRU, `ways()-1` = MRU.
    pub fn rank(&self, way: usize) -> usize {
        self.position(way)
    }

    /// Ways in recency order, LRU first.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.order.iter().map(|w| *w as usize)
    }

    fn position(&self, way: usize) -> usize {
        self.order
            .iter()
            .position(|w| *w as usize == way)
            .unwrap_or_else(|| panic!("way {way} out of range for {}-way set", self.order.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_moves_to_mru() {
        let mut lru = LruOrder::new(4);
        lru.touch(1);
        lru.touch(3);
        assert_eq!(lru.most_recent(), 3);
        assert_eq!(lru.least_recent(), 0);
        assert_eq!(lru.rank(1), 2);
    }

    #[test]
    fn demote_moves_to_lru() {
        let mut lru = LruOrder::new(4);
        lru.touch(0); // order now 1,2,3,0
        lru.demote(3);
        assert_eq!(lru.least_recent(), 3);
    }

    #[test]
    fn repeated_touches_keep_order_consistent() {
        let mut lru = LruOrder::new(3);
        for w in [0, 1, 2, 0, 1, 0] {
            lru.touch(w);
        }
        // Recency: 2 (oldest), 1, 0 (newest).
        assert_eq!(lru.iter().collect::<Vec<_>>(), vec![2, 1, 0]);
    }

    #[test]
    fn single_way_set() {
        let mut lru = LruOrder::new(1);
        lru.touch(0);
        assert_eq!(lru.least_recent(), 0);
        assert_eq!(lru.most_recent(), 0);
    }

    #[test]
    fn all_ways_present_exactly_once() {
        let mut lru = LruOrder::new(8);
        for w in [5, 2, 7, 2, 5] {
            lru.touch(w);
        }
        let mut ws: Vec<_> = lru.iter().collect();
        ws.sort_unstable();
        assert_eq!(ws, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn touch_rejects_bad_way() {
        LruOrder::new(2).touch(5);
    }
}

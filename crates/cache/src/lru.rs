//! True-LRU recency tracking for one cache set.
//!
//! Stored as a *rank vector* packed into byte lanes of four `u64`
//! words: lane `w` holds way `w`'s recency rank (0 = LRU,
//! `ways-1` = MRU). `touch` and `demote` adjust every affected lane
//! at once with SWAR arithmetic — a handful of register ops instead
//! of the `Vec<u8>` remove/insert (two linear scans plus a memmove)
//! this structure used before, on every access of every cache level.

/// Byte-lane MSBs, the carry-free comparison bit of each lane.
const LANE_MSB: u64 = 0x8080_8080_8080_8080;

/// Lanes per word (byte lanes in a `u64`).
const LANES: usize = 8;

/// Words backing the rank vector; `LANES * WORDS` = 32 ways maximum.
const WORDS: usize = 4;

/// Broadcasts a byte into every lane of a word.
#[inline]
fn bcast(x: u8) -> u64 {
    x as u64 * 0x0101_0101_0101_0101
}

/// Per-lane `>=` against a broadcast byte: returns a word with each
/// lane's MSB set iff that lane of `x` is `>= y`. Requires every lane
/// of `x` to be `<= 127` and `y <= 128` (ranks are `< 32`, so both
/// hold); under those bounds `(lane + 128) - y` never borrows across
/// lanes and its MSB survives exactly when `lane >= y`.
#[inline]
fn lanes_ge(x: u64, y: u8) -> u64 {
    ((x | LANE_MSB) - bcast(y)) & LANE_MSB
}

/// Recency order over the ways of one set: rank 0 is the least
/// recently used way, rank `ways-1` the most recently used.
///
/// `O(1)` per operation (at most four word-ops regardless of
/// associativity), supporting the paper's ≤ 32-way sets.
///
/// # Example
///
/// ```
/// use cmp_cache::lru::LruOrder;
///
/// let mut lru = LruOrder::new(4);
/// lru.touch(2);
/// assert_eq!(lru.most_recent(), 2);
/// assert_ne!(lru.least_recent(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LruOrder {
    /// Byte lane `w` holds way `w`'s rank; lanes beyond `ways` stay 0
    /// and are masked out of every update.
    ranks: [u64; WORDS],
    /// Per-word lane-MSB mask selecting the lanes that back real ways.
    valid: [u64; WORDS],
    /// Number of ways tracked.
    ways: u8,
    /// Words actually in use: `ceil(ways / 8)`.
    words: u8,
}

impl LruOrder {
    /// Creates an order over `ways` ways; initially way 0 is LRU.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds 32.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0 && ways <= LANES * WORDS, "ways must be in 1..=32");
        let mut ranks = [0u64; WORDS];
        let mut valid = [0u64; WORDS];
        for w in 0..ways {
            // Way w starts at rank w, matching insertion order.
            ranks[w / LANES] |= (w as u64) << (8 * (w % LANES));
            valid[w / LANES] |= 0x80 << (8 * (w % LANES));
        }
        LruOrder { ranks, valid, ways: ways as u8, words: ways.div_ceil(LANES) as u8 }
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> usize {
        self.ways as usize
    }

    #[inline]
    fn lane(&self, way: usize) -> u8 {
        (self.ranks[way / LANES] >> (8 * (way % LANES))) as u8
    }

    #[inline]
    fn set_lane(&mut self, way: usize, rank: u8) {
        let shift = 8 * (way % LANES);
        let word = &mut self.ranks[way / LANES];
        *word = (*word & !(0xFF << shift)) | ((rank as u64) << shift);
    }

    #[inline]
    fn checked_rank(&self, way: usize) -> u8 {
        if way >= self.ways as usize {
            panic!("way {way} out of range for {}-way set", self.ways);
        }
        self.lane(way)
    }

    /// Marks `way` most recently used.
    ///
    /// Already-MRU ways return immediately — the common case for a
    /// core re-hitting the same block.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    #[inline]
    pub fn touch(&mut self, way: usize) {
        let old = self.checked_rank(way);
        let mru = self.ways - 1;
        if old == mru {
            return;
        }
        // Every way ranked above `old` slides down one; `way` takes MRU.
        for i in 0..self.words as usize {
            let above = lanes_ge(self.ranks[i], old + 1) & self.valid[i];
            self.ranks[i] -= above >> 7;
        }
        self.set_lane(way, mru);
    }

    /// Marks `way` least recently used (used when an entry is
    /// invalidated, so the slot is preferred for the next fill).
    ///
    /// Already-LRU ways return immediately.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    #[inline]
    pub fn demote(&mut self, way: usize) {
        let old = self.checked_rank(way);
        if old == 0 {
            return;
        }
        // Every way ranked below `old` slides up one; `way` takes LRU.
        for i in 0..self.words as usize {
            let below = !lanes_ge(self.ranks[i], old) & LANE_MSB & self.valid[i];
            self.ranks[i] += below >> 7;
        }
        self.set_lane(way, 0);
    }

    /// The least recently used way.
    pub fn least_recent(&self) -> usize {
        self.way_at_rank(0)
    }

    /// The most recently used way.
    pub fn most_recent(&self) -> usize {
        self.way_at_rank(self.ways - 1)
    }

    /// Recency rank of `way`: 0 = LRU, `ways()-1` = MRU.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    #[inline]
    pub fn rank(&self, way: usize) -> usize {
        self.checked_rank(way) as usize
    }

    /// Ways in recency order, LRU first.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let mut by_rank = [0u8; LANES * WORDS];
        for w in 0..self.ways as usize {
            by_rank[self.lane(w) as usize] = w as u8;
        }
        (0..self.ways as usize).map(move |r| by_rank[r] as usize)
    }

    fn way_at_rank(&self, rank: u8) -> usize {
        (0..self.ways as usize)
            .find(|&w| self.lane(w) == rank)
            .expect("ranks form a permutation of the ways")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_moves_to_mru() {
        let mut lru = LruOrder::new(4);
        lru.touch(1);
        lru.touch(3);
        assert_eq!(lru.most_recent(), 3);
        assert_eq!(lru.least_recent(), 0);
        assert_eq!(lru.rank(1), 2);
    }

    #[test]
    fn demote_moves_to_lru() {
        let mut lru = LruOrder::new(4);
        lru.touch(0); // order now 1,2,3,0
        lru.demote(3);
        assert_eq!(lru.least_recent(), 3);
    }

    #[test]
    fn repeated_touches_keep_order_consistent() {
        let mut lru = LruOrder::new(3);
        for w in [0, 1, 2, 0, 1, 0] {
            lru.touch(w);
        }
        // Recency: 2 (oldest), 1, 0 (newest).
        assert_eq!(lru.iter().collect::<Vec<_>>(), vec![2, 1, 0]);
    }

    #[test]
    fn single_way_set() {
        let mut lru = LruOrder::new(1);
        lru.touch(0);
        assert_eq!(lru.least_recent(), 0);
        assert_eq!(lru.most_recent(), 0);
    }

    #[test]
    fn all_ways_present_exactly_once() {
        let mut lru = LruOrder::new(8);
        for w in [5, 2, 7, 2, 5] {
            lru.touch(w);
        }
        let mut ws: Vec<_> = lru.iter().collect();
        ws.sort_unstable();
        assert_eq!(ws, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn full_width_32_way_set() {
        let mut lru = LruOrder::new(32);
        for w in (0..32).rev() {
            lru.touch(w);
        }
        // Touched 31, 30, ..., 0: way 31 is now LRU, way 0 MRU.
        assert_eq!(lru.iter().collect::<Vec<_>>(), (0..32).rev().collect::<Vec<_>>());
        assert_eq!(lru.least_recent(), 31);
        assert_eq!(lru.most_recent(), 0);
    }

    #[test]
    fn touch_of_mru_way_is_a_noop() {
        let mut lru = LruOrder::new(4);
        lru.touch(2);
        let before = lru.clone();
        lru.touch(2); // already MRU: early return
        assert_eq!(lru, before);
        assert_eq!(lru.iter().collect::<Vec<_>>(), vec![0, 1, 3, 2]);
    }

    #[test]
    fn demote_of_lru_way_is_a_noop() {
        let mut lru = LruOrder::new(4);
        lru.touch(0); // order now 1,2,3,0
        let before = lru.clone();
        lru.demote(1); // already LRU: early return
        assert_eq!(lru, before);
        assert_eq!(lru.iter().collect::<Vec<_>>(), vec![1, 2, 3, 0]);
    }

    #[test]
    fn interleaved_touch_demote_pin_exact_order() {
        let mut lru = LruOrder::new(5);
        lru.touch(3); // 0,1,2,4,3
        lru.demote(2); // 2,0,1,4,3
        lru.touch(0); // 2,1,4,3,0
        lru.demote(3); // 3,2,1,4,0
        assert_eq!(lru.iter().collect::<Vec<_>>(), vec![3, 2, 1, 4, 0]);
        assert_eq!(lru.rank(4), 3);
        assert_eq!(lru.least_recent(), 3);
        assert_eq!(lru.most_recent(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn touch_rejects_bad_way() {
        LruOrder::new(2).touch(5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_rejects_bad_way() {
        let _ = LruOrder::new(3).rank(3);
    }

    #[test]
    #[should_panic(expected = "1..=32")]
    fn rejects_oversized_sets() {
        let _ = LruOrder::new(33);
    }
}

//! The L2-organization interface driven by the system simulator.

use cmp_coherence::Bus;
use cmp_mem::{AccessKind, BlockAddr, CoreId, Cycle, Fraction, ReuseHistogram, Rng};

use crate::violation::Violation;

/// Classification of one L2 access, matching the categories of the
//  paper's Figure 5:
/// hits, read-only-sharing misses, read-write-sharing misses, and
/// capacity misses (cold misses are counted as capacity, as in the
/// shared-cache categories).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessClass {
    /// The access hit. `closest` distinguishes closest-d-group hits
    /// from farther ones (Figure 9); uniform organizations report
    /// `true`.
    Hit {
        /// Hit was satisfied in the requestor's closest d-group /
        /// bank.
        closest: bool,
    },
    /// Miss, but another on-chip copy exists in a clean (shared)
    /// state.
    MissRos,
    /// Miss, but a dirty on-chip copy exists.
    MissRws,
    /// Miss with no on-chip copy (capacity or cold).
    MissCapacity,
}

impl AccessClass {
    /// `true` for either hit flavour.
    pub fn is_hit(self) -> bool {
        matches!(self, AccessClass::Hit { .. })
    }
}

/// The result of one L2 access: the latency charged to the requesting
/// core, the classification, and the write-through marking. The L1
/// invalidation directives accompanying the access are delivered
/// through the caller's [`InvalScratch`], not owned by the response,
/// so the L2 hit path performs no heap allocation.
#[derive(Clone, Copy, Debug)]
pub struct AccessResponse {
    /// Cycles until the requesting core may proceed.
    pub latency: Cycle,
    /// Figure 5 classification.
    pub class: AccessClass,
    /// The accessed block must be handled write-through in the
    /// requestor's L1 (C-state blocks, Section 3.2).
    pub writethrough: bool,
}

impl AccessResponse {
    /// A response with no write-through marking.
    pub fn simple(latency: Cycle, class: AccessClass) -> Self {
        AccessResponse { latency, class, writethrough: false }
    }
}

/// Reusable scratch buffer carrying one access's L1-maintenance
/// directives: the L1 blocks (at L2-block granularity) that must be
/// invalidated in the given cores' L1 caches — coherence
/// invalidations of remote copies and inclusion invalidations of
/// evicted victims.
///
/// The driver owns one instance and threads it through every
/// [`CacheOrg::access`] call; the organization resets it on entry
/// (via [`InvalScratch::begin`]) and appends to it, so after a few
/// warm-up accesses the buffer's capacity stabilizes and the per-access
/// heap traffic of the old `Vec`-owning response disappears.
#[derive(Clone, Debug, Default)]
pub struct InvalScratch {
    inval: Vec<(CoreId, BlockAddr)>,
}

impl InvalScratch {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the buffer for a new access. Organizations call this at
    /// the top of [`CacheOrg::access`]; the capacity is retained.
    #[inline]
    pub fn begin(&mut self) {
        self.inval.clear();
    }

    /// Records that `core`'s L1 must invalidate `block`.
    #[inline]
    pub fn push(&mut self, core: CoreId, block: BlockAddr) {
        self.inval.push((core, block));
    }

    /// Number of directives recorded by the current access.
    #[inline]
    pub fn len(&self) -> usize {
        self.inval.len()
    }

    /// `true` when the current access recorded no directives.
    pub fn is_empty(&self) -> bool {
        self.inval.is_empty()
    }

    /// The recorded directives.
    #[inline]
    pub fn as_slice(&self) -> &[(CoreId, BlockAddr)] {
        &self.inval
    }
}

/// An [`AccessResponse`] bundled with the invalidation directives it
/// produced, as an owned value. Convenience for tests, examples, and
/// doc snippets that inspect single accesses; batch drivers should
/// hold an [`InvalScratch`] and call [`CacheOrg::access`] directly.
#[derive(Clone, Debug)]
pub struct CollectedResponse {
    /// Cycles until the requesting core may proceed.
    pub latency: Cycle,
    /// Figure 5 classification.
    pub class: AccessClass,
    /// See [`InvalScratch`].
    pub l1_invalidate: Vec<(CoreId, BlockAddr)>,
    /// See [`AccessResponse::writethrough`].
    pub writethrough: bool,
}

/// Statistics accumulated by an L2 organization. One instance is
/// shared by all organizations so the figure harnesses can treat them
/// uniformly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OrgStats {
    /// Hits in the requestor's closest d-group / bank.
    pub hits_closest: u64,
    /// Hits in a farther d-group / bank.
    pub hits_farther: u64,
    /// Read-only-sharing misses (Figure 5).
    pub miss_ros: u64,
    /// Read-write-sharing misses (Figure 5).
    pub miss_rws: u64,
    /// Capacity (and cold) misses (Figure 5).
    pub miss_capacity: u64,
    /// Dirty blocks written back to memory.
    pub writebacks: u64,
    /// Coherence/inclusion invalidations delivered to L1s.
    pub l1_invalidations: u64,
    /// Final reuse counts of blocks filled by an ROS miss, recorded at
    /// replacement (Figure 7a).
    pub ros_reuse: ReuseHistogram,
    /// Final reuse counts of blocks filled by an RWS miss, recorded at
    /// invalidation (Figure 7b).
    pub rws_reuse: ReuseHistogram,
    /// CMP-NuRAPID: promotions of private blocks toward the requestor.
    pub promotions: u64,
    /// CMP-NuRAPID: demotions performed by distance replacement.
    pub demotions: u64,
    /// CMP-NuRAPID: data copies created by controlled replication on
    /// second use.
    pub replications: u64,
    /// CMP-NuRAPID: tag-only fills via pointer transfer (first use of
    /// an on-chip copy).
    pub pointer_transfers: u64,
    /// CMP-NuRAPID: tag entries dropped by observing BusRepl.
    pub busrepl_invalidations: u64,
    /// Evictions of shared-category (S/C) blocks.
    pub evictions_shared: u64,
    /// Evictions of private-category (E/M) blocks.
    pub evictions_private: u64,
    /// CMP-NuRAPID extension: C-state blocks collapsed back to M when
    /// all other sharers' tags were gone (`NurapidConfig::c_collapse`).
    pub c_collapses: u64,
}

impl OrgStats {
    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.hits_closest + self.hits_farther
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.miss_ros + self.miss_rws + self.miss_capacity
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits() + self.misses()
    }

    /// Hit fraction of all accesses.
    pub fn hit_fraction(&self) -> Fraction {
        Fraction::new(self.hits(), self.accesses())
    }

    /// Miss fraction of all accesses.
    pub fn miss_fraction(&self) -> Fraction {
        Fraction::new(self.misses(), self.accesses())
    }

    /// One Figure 5 / Figure 8 category as a fraction of all accesses.
    pub fn class_fraction(&self, class: AccessClass) -> Fraction {
        let n = match class {
            AccessClass::Hit { closest: true } => self.hits_closest,
            AccessClass::Hit { closest: false } => self.hits_farther,
            AccessClass::MissRos => self.miss_ros,
            AccessClass::MissRws => self.miss_rws,
            AccessClass::MissCapacity => self.miss_capacity,
        };
        Fraction::new(n, self.accesses())
    }

    /// Records an access classification.
    ///
    /// Every organization funnels each L2 access through here exactly
    /// once, which makes it the choke point for the process-global
    /// `cache.l2.*` observability counters (no-ops unless `CMP_OBS`
    /// is set; see `cmp-obs`).
    pub fn record_class(&mut self, class: AccessClass) {
        static L2_ACCESSES: cmp_obs::Counter = cmp_obs::Counter::new("cache.l2.accesses");
        static L2_HITS: cmp_obs::Counter = cmp_obs::Counter::new("cache.l2.hits");
        static L2_MISSES: cmp_obs::Counter = cmp_obs::Counter::new("cache.l2.misses");
        L2_ACCESSES.inc();
        match class {
            AccessClass::Hit { closest: true } => self.hits_closest += 1,
            AccessClass::Hit { closest: false } => self.hits_farther += 1,
            AccessClass::MissRos => self.miss_ros += 1,
            AccessClass::MissRws => self.miss_rws += 1,
            AccessClass::MissCapacity => self.miss_capacity += 1,
        }
        if class.is_hit() {
            L2_HITS.inc();
        } else {
            L2_MISSES.inc();
        }
    }
}

/// An L2 cache organization: the object the system simulator drives
/// with one call per L1 miss (plus write-throughs).
///
/// Implementations: [`crate::UniformShared`] (and its ideal variant),
/// [`crate::PrivateMesi`], [`crate::Snuca`], and `cmp-nurapid`'s
/// `CmpNurapid`.
pub trait CacheOrg {
    /// Short name used in experiment tables ("shared", "private",
    /// "snuca", "ideal", "nurapid").
    fn name(&self) -> &'static str;

    /// Performs one access by `core` to `block` (L2-block address) at
    /// local time `now`, using `bus` for any coherence transactions.
    ///
    /// `inv` is reset on entry and holds exactly this access's L1
    /// invalidation directives on return; the caller applies them and
    /// reuses the buffer for the next access.
    fn access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        now: Cycle,
        bus: &mut Bus,
        inv: &mut InvalScratch,
    ) -> AccessResponse;

    /// Statistics accumulated so far.
    fn stats(&self) -> &OrgStats;

    /// Resets the statistics (cache contents are kept). Used by the
    /// experiment harness to discard warm-up effects.
    fn reset_stats(&mut self);

    /// Number of cores this organization serves.
    fn cores(&self) -> usize;

    /// Fallible access path: like [`CacheOrg::access`], but surfaces a
    /// protocol [`Violation`] instead of panicking when the
    /// organization's internal state contradicts the snoop results
    /// (which happens under fault injection).
    ///
    /// The default delegates to the infallible path; organizations
    /// with internal consistency checks override it. Implementations
    /// must leave the structure in a *usable* (if degraded) state on
    /// `Err` so an audit harness can continue the run.
    fn try_access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        now: Cycle,
        bus: &mut Bus,
        inv: &mut InvalScratch,
    ) -> Result<AccessResponse, Violation> {
        Ok(self.access(core, block, kind, now, bus, inv))
    }

    /// Performs one access with a throwaway scratch buffer and
    /// returns the response and its invalidation directives as one
    /// owned value. Convenience for tests and examples; allocates, so
    /// batch drivers use [`CacheOrg::access`] with a reused
    /// [`InvalScratch`] instead.
    fn access_collected(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        now: Cycle,
        bus: &mut Bus,
    ) -> CollectedResponse {
        let mut inv = InvalScratch::new();
        let resp = self.access(core, block, kind, now, bus, &mut inv);
        CollectedResponse {
            latency: resp.latency,
            class: resp.class,
            l1_invalidate: inv.inval,
            writethrough: resp.writethrough,
        }
    }

    /// Runs the organization's structural self-checks, returning the
    /// first violated invariant. The default reports success:
    /// organizations without internal redundancy (nothing to
    /// cross-check) are vacuously consistent.
    fn audit(&self) -> Result<(), Violation> {
        Ok(())
    }

    /// Deterministically corrupts one piece of internal tag state
    /// (fault injection for audit self-tests). Returns a description
    /// of the corruption, or `None` when the organization does not
    /// support injection or holds no corruptible state yet.
    ///
    /// Implementations must choose corruptions their [`CacheOrg::audit`]
    /// is guaranteed to detect — the mutation self-test in `cmp-audit`
    /// relies on it.
    fn inject_tag_fault(&mut self, rng: &mut Rng) -> Option<String> {
        let _ = rng;
        None
    }
}

/// Forwarding implementation so `Box<dyn CacheOrg>` (and any other
/// boxed organization) is itself a [`CacheOrg`]. This is what lets
/// the system driver be generic over a *concrete* organization — the
/// monomorphized, dispatch-free hot path — while every existing
/// `Box<dyn CacheOrg>` call site keeps compiling through the same
/// generic driver (paying one virtual call per L2 access, as before).
impl<T: CacheOrg + ?Sized> CacheOrg for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    #[inline]
    fn access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        now: Cycle,
        bus: &mut Bus,
        inv: &mut InvalScratch,
    ) -> AccessResponse {
        (**self).access(core, block, kind, now, bus, inv)
    }

    fn stats(&self) -> &OrgStats {
        (**self).stats()
    }

    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }

    fn cores(&self) -> usize {
        (**self).cores()
    }

    fn try_access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        now: Cycle,
        bus: &mut Bus,
        inv: &mut InvalScratch,
    ) -> Result<AccessResponse, Violation> {
        (**self).try_access(core, block, kind, now, bus, inv)
    }

    fn access_collected(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        now: Cycle,
        bus: &mut Bus,
    ) -> CollectedResponse {
        (**self).access_collected(core, block, kind, now, bus)
    }

    fn audit(&self) -> Result<(), Violation> {
        (**self).audit()
    }

    fn inject_tag_fault(&mut self, rng: &mut Rng) -> Option<String> {
        (**self).inject_tag_fault(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(AccessClass::Hit { closest: true }.is_hit());
        assert!(AccessClass::Hit { closest: false }.is_hit());
        assert!(!AccessClass::MissRos.is_hit());
    }

    #[test]
    fn stats_roll_up() {
        let mut s = OrgStats::default();
        s.record_class(AccessClass::Hit { closest: true });
        s.record_class(AccessClass::Hit { closest: false });
        s.record_class(AccessClass::MissRos);
        s.record_class(AccessClass::MissRws);
        s.record_class(AccessClass::MissCapacity);
        assert_eq!(s.hits(), 2);
        assert_eq!(s.misses(), 3);
        assert_eq!(s.accesses(), 5);
        assert!((s.hit_fraction().value() - 0.4).abs() < 1e-12);
        assert!((s.class_fraction(AccessClass::MissRws).value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn simple_response_has_no_side_effects() {
        let r = AccessResponse::simple(10, AccessClass::Hit { closest: true });
        assert!(!r.writethrough);
        assert_eq!(r.latency, 10);
    }

    #[test]
    fn scratch_reset_keeps_capacity() {
        let mut inv = InvalScratch::new();
        assert!(inv.is_empty());
        inv.push(CoreId(1), BlockAddr(7));
        inv.push(CoreId(2), BlockAddr(9));
        assert_eq!(inv.len(), 2);
        assert_eq!(inv.as_slice()[0], (CoreId(1), BlockAddr(7)));
        let cap = inv.inval.capacity();
        inv.begin();
        assert!(inv.is_empty());
        assert_eq!(inv.inval.capacity(), cap);
    }
}

//! CMP-CNUCA: a compressed banked non-uniform shared L2.
//!
//! A scenario-spec extension beyond the paper's four baselines,
//! modelled on YACC-style compressed caches for NUCA substrates
//! (arXiv:2201.00774): the bank/latency substrate is exactly
//! CMP-SNUCA's, but the data array holds *compressed* blocks.
//! Compressibility is a deterministic property of the block address
//! (a seeded hash, standing in for content entropy): a compressible
//! block occupies one half-block data unit, an incompressible one two.
//! Each set owns a fixed data budget of [`SET_UNIT_BUDGET`] units with
//! twice as many tag ways as uncompressed data frames, so a fully
//! compressible working set doubles the effective capacity while an
//! incompressible one degenerates to the plain banked cache.
//!
//! Hits on compressed blocks pay a small decompression penalty on top
//! of the bank's routing latency. Coherence is directory-style L1
//! presence bits, exactly as in the other shared organizations.

use cmp_coherence::Bus;
use cmp_latency::{LatencyBook, SnucaLatencies};
use cmp_mem::{AccessKind, BlockAddr, CacheGeometry, CoreId, Cycle};

use crate::org::{AccessClass, AccessResponse, CacheOrg, InvalScratch, OrgStats};
use crate::tag_array::TagArray;

/// Decompression latency added to hits on compressed blocks.
pub const DECOMPRESS_CYCLES: Cycle = 2;

/// Data-unit budget per set: 32 half-block units = 16 uncompressed
/// frames, matching a 16-way uncompressed set's data space.
pub const SET_UNIT_BUDGET: u32 = 32;

/// Fraction of the address space that compresses, in 256ths (~62%,
/// the mid-range compression coverage reported for SPEC-like mixes).
const COMPRESSIBLE_OUT_OF_256: u64 = 160;

#[derive(Clone, Debug, Default)]
struct CnucaEntry {
    dirty: bool,
    compressed: bool,
    l1_presence: u64,
}

/// The compressed banked shared L2.
///
/// # Example
///
/// ```
/// use cmp_cache::{CacheOrg, Cnuca, InvalScratch};
/// use cmp_coherence::Bus;
/// use cmp_latency::LatencyBook;
/// use cmp_mem::{AccessKind, BlockAddr, CoreId};
///
/// let mut l2 = Cnuca::paper(&LatencyBook::paper());
/// let mut bus = Bus::paper();
/// let mut inv = InvalScratch::new();
/// l2.access(CoreId(0), BlockAddr(0), AccessKind::Read, 0, &mut bus, &mut inv);
/// let hit = l2.access(CoreId(0), BlockAddr(0), AccessKind::Read, 100, &mut bus, &mut inv);
/// assert!(hit.class.is_hit());
/// ```
pub struct Cnuca {
    tags: TagArray<CnucaEntry>,
    latencies: SnucaLatencies,
    near_threshold: Vec<Cycle>,
    cores: usize,
    memory_latency: Cycle,
    stats: OrgStats,
}

impl Cnuca {
    /// The paper-scale machine with compression on top: the 8 MB
    /// banked substrate with doubled tags.
    pub fn paper(book: &LatencyBook) -> Self {
        Self::sized(book, cmp_mem::L2_TOTAL_BYTES)
    }

    /// The compressed organization at an explicit uncompressed data
    /// capacity. The tag array carries twice the ways of the
    /// equivalent 16-frame set so compressed sets can overcommit.
    pub fn sized(book: &LatencyBook, total_bytes: usize) -> Self {
        let cores = book.cores();
        let latencies = book.snuca.clone();
        let near_threshold = CoreId::all(cores)
            .map(|c| {
                let mut lats: Vec<Cycle> =
                    (0..latencies.banks()).map(|b| latencies.latency(c, b)).collect();
                lats.sort_unstable();
                lats[lats.len() / 4] // nearest quartile, as in SNUCA
            })
            .collect();
        // Same set count as a 16-way array over `total_bytes`, but 32
        // tag ways: double the tag space over the same data space.
        let tag_geom = CacheGeometry::new(2 * total_bytes, cmp_mem::L2_BLOCK_BYTES, 32);
        Cnuca {
            tags: TagArray::new(tag_geom),
            latencies,
            near_threshold,
            cores,
            memory_latency: book.memory,
            stats: OrgStats::default(),
        }
    }

    fn core_bit(core: CoreId) -> u64 {
        1 << core.index()
    }

    /// Deterministic stand-in for content compressibility: a seeded
    /// splitmix of the block address.
    pub fn compressible(block: BlockAddr) -> bool {
        let mut z = block.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z & 0xFF) < COMPRESSIBLE_OUT_OF_256
    }

    fn units_of(block: BlockAddr) -> u32 {
        if Self::compressible(block) {
            1
        } else {
            2
        }
    }

    /// Data units currently resident in `set`.
    fn used_units(&self, set: usize) -> u32 {
        self.tags.iter_set(set).map(|(_, _, p)| if p.compressed { 1 } else { 2 }).sum()
    }

    /// Hit latency for `core` accessing `block`'s bank (before any
    /// decompression penalty).
    pub fn bank_latency(&self, core: CoreId, block: BlockAddr) -> Cycle {
        self.latencies.latency(core, self.latencies.bank_of(block))
    }

    /// Number of resident blocks stored compressed (diagnostic hook).
    pub fn compressed_resident(&self) -> usize {
        self.tags.iter_all().filter(|(_, _, _, p)| p.compressed).count()
    }
}

impl CacheOrg for Cnuca {
    fn name(&self) -> &'static str {
        "cnuca"
    }

    #[inline]
    fn access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        _now: Cycle,
        _bus: &mut Bus,
        inv: &mut InvalScratch,
    ) -> AccessResponse {
        inv.begin();
        let set = self.tags.set_of(block);
        let bank_lat = self.bank_latency(core, block);
        let resp;
        if let Some(way) = self.tags.lookup(block) {
            self.tags.touch(set, way);
            let entry = self.tags.entry_mut(set, way).expect("hit entry exists");
            let lat = bank_lat + if entry.payload.compressed { DECOMPRESS_CYCLES } else { 0 };
            let closest = lat <= self.near_threshold[core.index()];
            resp = AccessResponse::simple(lat, AccessClass::Hit { closest });
            if kind.is_write() {
                entry.payload.dirty = true;
                let others = entry.payload.l1_presence & !Self::core_bit(core);
                entry.payload.l1_presence &= !others;
                for c in CoreId::all(self.cores) {
                    if others & Self::core_bit(c) != 0 {
                        inv.push(c, block);
                    }
                }
            }
            entry.payload.l1_presence |= Self::core_bit(core);
        } else {
            resp =
                AccessResponse::simple(bank_lat + self.memory_latency, AccessClass::MissCapacity);
            let need = Self::units_of(block);
            // Evict LRU residents until the set's data budget and a
            // free tag way can take the incoming block.
            loop {
                let has_free_way = self.tags.iter_set(set).count() < 32;
                if has_free_way && self.used_units(set) + need <= SET_UNIT_BUDGET {
                    break;
                }
                let victim = self.tags.victim_by(set, |e| u32::from(e.is_none()));
                let Some((victim_block, payload)) = self.tags.evict(set, victim) else {
                    break; // empty set, nothing more to free
                };
                if payload.dirty {
                    self.stats.writebacks += 1;
                }
                for c in CoreId::all(self.cores) {
                    if payload.l1_presence & Self::core_bit(c) != 0 {
                        inv.push(c, victim_block);
                    }
                }
            }
            let way = self.tags.victim_by(set, |e| u32::from(e.is_some()));
            self.tags.fill(
                set,
                way,
                block,
                CnucaEntry {
                    dirty: kind.is_write(),
                    compressed: Self::compressible(block),
                    l1_presence: Self::core_bit(core),
                },
            );
        }
        self.stats.l1_invalidations += inv.len() as u64;
        self.stats.record_class(resp.class);
        resp
    }

    fn stats(&self) -> &OrgStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OrgStats::default();
    }

    fn cores(&self) -> usize {
        self.cores
    }
}

impl std::fmt::Debug for Cnuca {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cnuca")
            .field("banks", &self.latencies.banks())
            .field("occupied", &self.tags.len())
            .field("compressed", &self.compressed_resident())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::CollectedResponse;

    fn paper_cnuca() -> Cnuca {
        Cnuca::paper(&LatencyBook::paper())
    }

    fn rd(l2: &mut Cnuca, core: u8, block: u64) -> CollectedResponse {
        let mut bus = Bus::paper();
        l2.access_collected(CoreId(core), BlockAddr(block), AccessKind::Read, 0, &mut bus)
    }

    #[test]
    fn compressibility_is_deterministic_and_mixed() {
        let compressed = (0..1000u64).filter(|&b| Cnuca::compressible(BlockAddr(b))).count();
        assert!(compressed > 400 && compressed < 800, "got {compressed}/1000");
        for b in 0..100u64 {
            assert_eq!(Cnuca::compressible(BlockAddr(b)), Cnuca::compressible(BlockAddr(b)));
        }
    }

    #[test]
    fn compressed_hits_pay_decompression() {
        let mut l2 = paper_cnuca();
        let comp = (0..1_000u64).find(|&b| Cnuca::compressible(BlockAddr(b))).unwrap();
        let incomp = (0..1_000u64).find(|&b| !Cnuca::compressible(BlockAddr(b))).unwrap();
        rd(&mut l2, 0, comp);
        rd(&mut l2, 0, incomp);
        let hit_c = rd(&mut l2, 0, comp);
        let hit_i = rd(&mut l2, 0, incomp);
        assert_eq!(hit_c.latency, l2.bank_latency(CoreId(0), BlockAddr(comp)) + DECOMPRESS_CYCLES);
        assert_eq!(hit_i.latency, l2.bank_latency(CoreId(0), BlockAddr(incomp)));
    }

    #[test]
    fn compressed_sets_hold_more_blocks_than_sixteen_frames() {
        let mut l2 = paper_cnuca();
        let sets = l2.tags.geometry().num_sets() as u64;
        // Walk compressible blocks of one set until the tag ways cap out.
        let set0: Vec<u64> = (0..(64 * sets))
            .step_by(sets as usize)
            .filter(|&b| Cnuca::compressible(BlockAddr(b)))
            .take(24)
            .collect();
        assert!(set0.len() >= 20, "need enough compressible blocks in one set");
        for &b in &set0 {
            rd(&mut l2, 0, b);
        }
        let resident = set0.iter().filter(|&&b| l2.tags.lookup(BlockAddr(b)).is_some()).count();
        assert!(
            resident > 16,
            "compression must overcommit the 16-frame data budget, got {resident}"
        );
    }

    #[test]
    fn incompressible_sets_degrade_to_sixteen_frames() {
        let mut l2 = paper_cnuca();
        let sets = l2.tags.geometry().num_sets() as u64;
        let set0: Vec<u64> = (0..(128 * sets))
            .step_by(sets as usize)
            .filter(|&b| !Cnuca::compressible(BlockAddr(b)))
            .take(20)
            .collect();
        assert!(set0.len() == 20);
        for &b in &set0 {
            rd(&mut l2, 0, b);
        }
        let resident = set0.iter().filter(|&&b| l2.tags.lookup(BlockAddr(b)).is_some()).count();
        assert_eq!(resident, 16, "two units each: exactly 16 incompressible blocks fit");
    }

    #[test]
    fn write_invalidates_remote_l1s() {
        let mut l2 = paper_cnuca();
        rd(&mut l2, 0, 7);
        rd(&mut l2, 1, 7);
        let mut bus = Bus::paper();
        let w = l2.access_collected(CoreId(0), BlockAddr(7), AccessKind::Write, 0, &mut bus);
        assert_eq!(w.l1_invalidate, vec![(CoreId(1), BlockAddr(7))]);
    }

    #[test]
    fn misses_are_capacity_only_and_pay_memory() {
        let mut l2 = paper_cnuca();
        let miss = rd(&mut l2, 0, 42);
        assert_eq!(miss.class, AccessClass::MissCapacity);
        assert!(miss.latency > 300);
        assert_eq!(l2.stats().miss_ros + l2.stats().miss_rws, 0);
    }
}

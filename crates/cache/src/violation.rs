//! Structured check failures reported by cache organizations.
//!
//! A [`Violation`] is the non-panicking replacement for the `assert!`
//! diagnostics the structural checkers used to emit: it names the
//! violated check, the coordinates of the offending state (core,
//! block), and an expected/actual pair, so an audit harness can log,
//! serialize, and replay it instead of tearing the process down.

use std::fmt;

use cmp_mem::{BlockAddr, CoreId};

/// One violated structural or protocol check inside a cache
/// organization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable machine-readable name of the violated check
    /// (e.g. `"forward-pointer-live"`, `"dirty-singleton"`).
    pub check: &'static str,
    /// Core whose state violated the check, when attributable.
    pub core: Option<CoreId>,
    /// Block whose state violated the check, when attributable.
    pub block: Option<BlockAddr>,
    /// What the check required.
    pub expected: String,
    /// What the structure actually held.
    pub actual: String,
}

impl Violation {
    /// Builds a violation record.
    pub fn new(
        check: &'static str,
        core: Option<CoreId>,
        block: Option<BlockAddr>,
        expected: impl Into<String>,
        actual: impl Into<String>,
    ) -> Self {
        Violation { check, core, block, expected: expected.into(), actual: actual.into() }
    }

    /// A violation scoped to one core's view of one block.
    pub fn at(
        check: &'static str,
        core: CoreId,
        block: BlockAddr,
        expected: impl Into<String>,
        actual: impl Into<String>,
    ) -> Self {
        Violation::new(check, Some(core), Some(block), expected, actual)
    }

    /// A violation scoped to one block, without a responsible core.
    pub fn on_block(
        check: &'static str,
        block: BlockAddr,
        expected: impl Into<String>,
        actual: impl Into<String>,
    ) -> Self {
        Violation::new(check, None, Some(block), expected, actual)
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "check '{}' violated", self.check)?;
        if let Some(core) = self.core {
            write!(f, " at {core}")?;
        }
        if let Some(block) = self.block {
            write!(f, " for block {block}")?;
        }
        write!(f, ": expected {}, found {}", self.expected, self.actual)
    }
}

impl std::error::Error for Violation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_coordinates() {
        let v = Violation::at("dirty-singleton", CoreId(2), BlockAddr(0x40), "1 dirty copy", "2");
        let s = v.to_string();
        assert!(s.contains("dirty-singleton"), "{s}");
        assert!(s.contains("P2"), "{s}");
        assert!(s.contains("0x40"), "{s}");
        assert!(s.contains("expected 1 dirty copy, found 2"), "{s}");
    }

    #[test]
    fn coordinates_are_optional() {
        let v = Violation::new("orphan-frame", None, None, "none", "one");
        assert_eq!(v.to_string(), "check 'orphan-frame' violated: expected none, found one");
        let b = Violation::on_block("orphan-frame", BlockAddr(3), "none", "one");
        assert!(b.to_string().contains("for block 0x3"));
    }
}

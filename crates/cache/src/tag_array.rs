//! Generic set-associative tag array with pluggable payloads.
//!
//! Every cache structure in the reproduction — the private MESI
//! caches, the shared caches, the L1s, and CMP-NuRAPID's per-core tag
//! arrays — is an instance of [`TagArray`] with a different payload
//! type. Victim selection is caller-controlled (via
//! [`TagArray::victim_by`]) because the paper's organizations rank
//! victims differently: plain LRU for the baselines, the
//! invalid → private → shared category order for CMP-NuRAPID
//! (Section 3.3.2).
//!
//! Storage is flat: one contiguous sentinel-tagged `Vec<u64>` of raw
//! tags (scanned by [`TagArray::lookup`] without touching payloads),
//! one flat entry vector, one packed [`LruOrder`] per set, and a
//! maintained occupancy counter so [`TagArray::len`] is `O(1)`.

use cmp_mem::{BlockAddr, CacheGeometry};

use crate::lru::LruOrder;

/// Tag value marking a vacant slot in the flat tag vector. [`fill`]
/// rejects real tags equal to it, so a lookup can never falsely match
/// a vacant way.
///
/// [`fill`]: TagArray::fill
const EMPTY_TAG: u64 = u64::MAX;

/// One resident tag entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry<P> {
    tag: u64,
    /// Organization-specific state (coherence state, pointers, reuse
    /// counters, ...).
    pub payload: P,
}

/// A set-associative tag array.
///
/// # Example
///
/// ```
/// use cmp_cache::TagArray;
/// use cmp_mem::{BlockAddr, CacheGeometry};
///
/// let mut tags: TagArray<u32> = TagArray::new(CacheGeometry::new(1024, 64, 2));
/// let b = BlockAddr(3);
/// assert!(tags.lookup(b).is_none());
/// let way = tags.victim_by(tags.set_of(b), |e| if e.is_none() { 0 } else { 1 });
/// tags.fill(tags.set_of(b), way, b, 7);
/// assert_eq!(tags.lookup(b), Some(way));
/// ```
pub struct TagArray<P> {
    geom: CacheGeometry,
    ways: usize,
    /// `tags[set * ways + way]`: the raw tag, or [`EMPTY_TAG`].
    tags: Vec<u64>,
    /// Entry storage, parallel to `tags`: occupied exactly where the
    /// tag is not [`EMPTY_TAG`].
    entries: Vec<Option<Entry<P>>>,
    /// Recency order per set.
    lru: Vec<LruOrder>,
    /// Occupied-slot count, maintained by `fill`/`evict`.
    occupied: usize,
}

impl<P> TagArray<P> {
    /// Creates an empty array with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let slots = geom.num_sets() * geom.associativity();
        TagArray {
            geom,
            ways: geom.associativity(),
            tags: vec![EMPTY_TAG; slots],
            entries: (0..slots).map(|_| None).collect(),
            lru: (0..geom.num_sets()).map(|_| LruOrder::new(geom.associativity())).collect(),
            occupied: 0,
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Set index for a block.
    #[inline]
    pub fn set_of(&self, block: BlockAddr) -> usize {
        self.geom.set_of(block)
    }

    /// Finds the way holding `block`, if resident.
    #[inline]
    pub fn lookup(&self, block: BlockAddr) -> Option<usize> {
        let tag = self.geom.tag_of(block);
        if tag == EMPTY_TAG {
            return None; // cannot be resident: `fill` rejects it
        }
        let base = self.geom.set_of(block) * self.ways;
        self.tags[base..base + self.ways].iter().position(|&t| t == tag)
    }

    /// Finds `block` and, if resident, marks its way MRU in one pass:
    /// the set index and tag are computed once and the recency update
    /// reuses them. Returns `(set, way)` on a hit.
    ///
    /// This is the all-levels read-hit fast path — equivalent to
    /// [`TagArray::lookup`] followed by [`TagArray::touch`].
    #[inline]
    pub fn lookup_touch(&mut self, block: BlockAddr) -> Option<(usize, usize)> {
        let tag = self.geom.tag_of(block);
        if tag == EMPTY_TAG {
            return None;
        }
        let set = self.geom.set_of(block);
        let base = set * self.ways;
        let way = self.tags[base..base + self.ways].iter().position(|&t| t == tag)?;
        self.lru[set].touch(way);
        Some((set, way))
    }

    /// Reference to the entry at (`set`, `way`), if occupied.
    #[inline]
    pub fn entry(&self, set: usize, way: usize) -> Option<&Entry<P>> {
        self.entries[set * self.ways + way].as_ref()
    }

    /// Mutable reference to the entry at (`set`, `way`), if occupied.
    #[inline]
    pub fn entry_mut(&mut self, set: usize, way: usize) -> Option<&mut Entry<P>> {
        self.entries[set * self.ways + way].as_mut()
    }

    /// Block address stored at (`set`, `way`), if occupied.
    pub fn block_at(&self, set: usize, way: usize) -> Option<BlockAddr> {
        self.entries[set * self.ways + way].as_ref().map(|e| self.geom.block_of(e.tag, set))
    }

    /// Marks (`set`, `way`) most recently used.
    #[inline]
    pub fn touch(&mut self, set: usize, way: usize) {
        self.lru[set].touch(way);
    }

    /// Recency rank of a way within its set (0 = LRU).
    #[inline]
    pub fn recency_rank(&self, set: usize, way: usize) -> usize {
        self.lru[set].rank(way)
    }

    /// Selects a victim way: the way minimizing `(rank_fn(entry),
    /// recency)`. Passing a category function implements the paper's
    /// "invalid, then private, then shared; LRU within each category"
    /// policy; passing a constant gives plain LRU.
    pub fn victim_by(
        &self,
        set: usize,
        mut rank_fn: impl FnMut(Option<&Entry<P>>) -> u32,
    ) -> usize {
        let base = set * self.ways;
        let lru = &self.lru[set];
        let mut best = (u32::MAX, usize::MAX, 0usize);
        for way in 0..self.ways {
            let key = (rank_fn(self.entries[base + way].as_ref()), lru.rank(way), way);
            if (key.0, key.1) < (best.0, best.1) {
                best = key;
            }
        }
        best.2
    }

    /// Removes and returns the entry at (`set`, `way`) together with
    /// its block address; the slot becomes the set's LRU way.
    pub fn evict(&mut self, set: usize, way: usize) -> Option<(BlockAddr, P)> {
        let idx = set * self.ways + way;
        let taken = self.entries[idx].take();
        self.lru[set].demote(way);
        if taken.is_some() {
            self.tags[idx] = EMPTY_TAG;
            self.occupied -= 1;
        }
        taken.map(|e| (self.geom.block_of(e.tag, set), e.payload))
    }

    /// Installs `block` at (`set`, `way`) and marks it MRU.
    ///
    /// # Panics
    ///
    /// Panics if the slot is still occupied (callers must evict
    /// first), if `set` does not match the block's set index, or if
    /// the block's tag collides with the vacant-slot sentinel.
    pub fn fill(&mut self, set: usize, way: usize, block: BlockAddr, payload: P) {
        assert_eq!(set, self.geom.set_of(block), "block filled into wrong set");
        let tag = self.geom.tag_of(block);
        assert_ne!(tag, EMPTY_TAG, "block tag collides with the vacant-slot sentinel");
        let idx = set * self.ways + way;
        let slot = &mut self.entries[idx];
        assert!(slot.is_none(), "fill into occupied way; evict first");
        *slot = Some(Entry { tag, payload });
        self.tags[idx] = tag;
        self.occupied += 1;
        self.lru[set].touch(way);
    }

    /// Iterates over occupied entries of one set as `(way, block,
    /// &payload)`.
    pub fn iter_set(&self, set: usize) -> impl Iterator<Item = (usize, BlockAddr, &P)> + '_ {
        let base = set * self.ways;
        self.entries[base..base + self.ways].iter().enumerate().filter_map(move |(way, slot)| {
            slot.as_ref().map(|e| (way, self.geom.block_of(e.tag, set), &e.payload))
        })
    }

    /// Iterates over all occupied entries as `(set, way, block,
    /// &payload)`.
    pub fn iter_all(&self) -> impl Iterator<Item = (usize, usize, BlockAddr, &P)> + '_ {
        (0..self.lru.len()).flat_map(move |set| {
            self.iter_set(set).map(move |(way, block, p)| (set, way, block, p))
        })
    }

    /// Number of occupied entries (`O(1)`: maintained, not scanned).
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }
}

impl<P: std::fmt::Debug> std::fmt::Debug for TagArray<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TagArray")
            .field("geometry", &self.geom)
            .field("occupied", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TagArray<u32> {
        // 4 sets, 2 ways, 64 B blocks.
        TagArray::new(CacheGeometry::new(512, 64, 2))
    }

    fn fill_block(t: &mut TagArray<u32>, block: BlockAddr, payload: u32) -> usize {
        let set = t.set_of(block);
        let way = t.victim_by(set, |e| if e.is_none() { 0 } else { 1 });
        t.evict(set, way);
        t.fill(set, way, block, payload);
        way
    }

    #[test]
    fn lookup_after_fill() {
        let mut t = small();
        let b = BlockAddr(5);
        let way = fill_block(&mut t, b, 99);
        assert_eq!(t.lookup(b), Some(way));
        assert_eq!(t.entry(t.set_of(b), way).unwrap().payload, 99);
        assert_eq!(t.block_at(t.set_of(b), way), Some(b));
    }

    #[test]
    fn conflicting_blocks_evict_lru() {
        let mut t = small();
        // Three blocks mapping to set 1 in a 2-way array.
        let b1 = BlockAddr(1);
        let b2 = BlockAddr(5);
        let b3 = BlockAddr(9);
        fill_block(&mut t, b1, 1);
        fill_block(&mut t, b2, 2);
        // Touch b1 so b2 is LRU.
        let w1 = t.lookup(b1).unwrap();
        t.touch(t.set_of(b1), w1);
        fill_block(&mut t, b3, 3);
        assert!(t.lookup(b1).is_some());
        assert!(t.lookup(b2).is_none(), "LRU entry should be the victim");
        assert!(t.lookup(b3).is_some());
    }

    #[test]
    fn victim_prefers_lower_rank_category() {
        let mut t = small();
        let b1 = BlockAddr(1);
        let b2 = BlockAddr(5);
        fill_block(&mut t, b1, 10); // payload 10 = "shared"
        fill_block(&mut t, b2, 20); // payload 20 = "private"
                                    // Rank: prefer evicting the "private" (20) entry despite b1
                                    // being older.
        let set = t.set_of(b1);
        let victim = t.victim_by(set, |e| match e {
            None => 0,
            Some(e) if e.payload == 20 => 1,
            Some(_) => 2,
        });
        assert_eq!(t.block_at(set, victim), Some(b2));
    }

    #[test]
    fn evict_returns_block_and_payload() {
        let mut t = small();
        let b = BlockAddr(7);
        let way = fill_block(&mut t, b, 42);
        let (evicted, payload) = t.evict(t.set_of(b), way).unwrap();
        assert_eq!(evicted, b);
        assert_eq!(payload, 42);
        assert!(t.lookup(b).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn evicted_way_becomes_preferred_victim() {
        let mut t = small();
        let b1 = BlockAddr(1);
        let b2 = BlockAddr(5);
        fill_block(&mut t, b1, 1);
        fill_block(&mut t, b2, 2);
        let w1 = t.lookup(b1).unwrap();
        let set = t.set_of(b1);
        t.evict(set, w1);
        // Plain LRU victim should be the just-vacated way.
        assert_eq!(t.victim_by(set, |_| 0), w1);
    }

    #[test]
    fn evict_of_vacant_way_still_demotes_it() {
        // The recency order must evolve identically whether or not the
        // evicted slot was occupied (fill helpers evict
        // unconditionally).
        let mut t = small();
        let b1 = BlockAddr(1);
        let b2 = BlockAddr(5);
        fill_block(&mut t, b1, 1);
        fill_block(&mut t, b2, 2);
        let w1 = t.lookup(b1).unwrap();
        let set = t.set_of(b1);
        t.evict(set, w1);
        assert!(t.evict(set, w1).is_none()); // vacant, but still demoted
        assert_eq!(t.victim_by(set, |_| 0), w1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn len_is_maintained_across_fill_and_evict() {
        let mut t = small();
        assert_eq!(t.len(), 0);
        for (i, raw) in [0u64, 1, 2, 3, 4, 5].iter().enumerate() {
            fill_block(&mut t, BlockAddr(*raw), i as u32);
        }
        // 4 sets x 2 ways, blocks 0..6 land pairwise: 6 resident.
        assert_eq!(t.len(), 6);
        let b = BlockAddr(2);
        let way = t.lookup(b).unwrap();
        t.evict(t.set_of(b), way);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn iter_set_reports_all_occupied_ways() {
        let mut t = small();
        fill_block(&mut t, BlockAddr(1), 1);
        fill_block(&mut t, BlockAddr(5), 2);
        let entries: Vec<_> = t.iter_set(1).collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn iter_all_spans_sets() {
        let mut t = small();
        fill_block(&mut t, BlockAddr(0), 1);
        fill_block(&mut t, BlockAddr(1), 2);
        fill_block(&mut t, BlockAddr(2), 3);
        assert_eq!(t.iter_all().count(), 3);
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn double_fill_panics() {
        let mut t = small();
        let b = BlockAddr(3);
        let set = t.set_of(b);
        t.fill(set, 0, b, 1);
        t.fill(set, 0, BlockAddr(7), 2);
    }

    #[test]
    #[should_panic(expected = "wrong set")]
    fn fill_checks_set_index() {
        let mut t = small();
        t.fill(0, 0, BlockAddr(1), 1); // block 1 belongs to set 1
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn fill_rejects_sentinel_tag() {
        // A single-set array keeps the whole block address as the tag,
        // so block u64::MAX collides with the vacant marker.
        let mut t: TagArray<u32> = TagArray::new(CacheGeometry::new(128, 64, 2));
        t.fill(0, 0, BlockAddr(u64::MAX), 1);
    }
}

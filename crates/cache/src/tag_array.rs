//! Generic set-associative tag array with pluggable payloads.
//!
//! Every cache structure in the reproduction — the private MESI
//! caches, the shared caches, the L1s, and CMP-NuRAPID's per-core tag
//! arrays — is an instance of [`TagArray`] with a different payload
//! type. Victim selection is caller-controlled (via
//! [`TagArray::victim_by`]) because the paper's organizations rank
//! victims differently: plain LRU for the baselines, the
//! invalid → private → shared category order for CMP-NuRAPID
//! (Section 3.3.2).

use cmp_mem::{BlockAddr, CacheGeometry};

use crate::lru::LruOrder;

/// One resident tag entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry<P> {
    tag: u64,
    /// Organization-specific state (coherence state, pointers, reuse
    /// counters, ...).
    pub payload: P,
}

struct Set<P> {
    ways: Vec<Option<Entry<P>>>,
    lru: LruOrder,
}

/// A set-associative tag array.
///
/// # Example
///
/// ```
/// use cmp_cache::TagArray;
/// use cmp_mem::{BlockAddr, CacheGeometry};
///
/// let mut tags: TagArray<u32> = TagArray::new(CacheGeometry::new(1024, 64, 2));
/// let b = BlockAddr(3);
/// assert!(tags.lookup(b).is_none());
/// let way = tags.victim_by(tags.set_of(b), |e| if e.is_none() { 0 } else { 1 });
/// tags.fill(tags.set_of(b), way, b, 7);
/// assert_eq!(tags.lookup(b), Some(way));
/// ```
pub struct TagArray<P> {
    geom: CacheGeometry,
    sets: Vec<Set<P>>,
}

impl<P> TagArray<P> {
    /// Creates an empty array with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = (0..geom.num_sets())
            .map(|_| Set {
                ways: (0..geom.associativity()).map(|_| None).collect(),
                lru: LruOrder::new(geom.associativity()),
            })
            .collect();
        TagArray { geom, sets }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Set index for a block.
    #[inline]
    pub fn set_of(&self, block: BlockAddr) -> usize {
        self.geom.set_of(block)
    }

    /// Finds the way holding `block`, if resident.
    pub fn lookup(&self, block: BlockAddr) -> Option<usize> {
        let set = &self.sets[self.geom.set_of(block)];
        let tag = self.geom.tag_of(block);
        set.ways.iter().position(|w| matches!(w, Some(e) if e.tag == tag))
    }

    /// Reference to the entry at (`set`, `way`), if occupied.
    pub fn entry(&self, set: usize, way: usize) -> Option<&Entry<P>> {
        self.sets[set].ways[way].as_ref()
    }

    /// Mutable reference to the entry at (`set`, `way`), if occupied.
    pub fn entry_mut(&mut self, set: usize, way: usize) -> Option<&mut Entry<P>> {
        self.sets[set].ways[way].as_mut()
    }

    /// Block address stored at (`set`, `way`), if occupied.
    pub fn block_at(&self, set: usize, way: usize) -> Option<BlockAddr> {
        self.sets[set].ways[way].as_ref().map(|e| self.geom.block_of(e.tag, set))
    }

    /// Marks (`set`, `way`) most recently used.
    pub fn touch(&mut self, set: usize, way: usize) {
        self.sets[set].lru.touch(way);
    }

    /// Recency rank of a way within its set (0 = LRU).
    pub fn recency_rank(&self, set: usize, way: usize) -> usize {
        self.sets[set].lru.rank(way)
    }

    /// Selects a victim way: the way minimizing `(rank_fn(entry),
    /// recency)`. Passing a category function implements the paper's
    /// "invalid, then private, then shared; LRU within each category"
    /// policy; passing a constant gives plain LRU.
    pub fn victim_by(
        &self,
        set: usize,
        mut rank_fn: impl FnMut(Option<&Entry<P>>) -> u32,
    ) -> usize {
        let s = &self.sets[set];
        s.lru
            .iter()
            .map(|way| (rank_fn(s.ways[way].as_ref()), way))
            .min_by_key(|(rank, _)| *rank)
            .map(|(_, way)| way)
            .expect("sets are never zero-way")
    }

    /// Removes and returns the entry at (`set`, `way`) together with
    /// its block address; the slot becomes the set's LRU way.
    pub fn evict(&mut self, set: usize, way: usize) -> Option<(BlockAddr, P)> {
        let taken = self.sets[set].ways[way].take();
        self.sets[set].lru.demote(way);
        taken.map(|e| (self.geom.block_of(e.tag, set), e.payload))
    }

    /// Installs `block` at (`set`, `way`) and marks it MRU.
    ///
    /// # Panics
    ///
    /// Panics if the slot is still occupied (callers must evict
    /// first) or if `set` does not match the block's set index.
    pub fn fill(&mut self, set: usize, way: usize, block: BlockAddr, payload: P) {
        assert_eq!(set, self.geom.set_of(block), "block filled into wrong set");
        let slot = &mut self.sets[set].ways[way];
        assert!(slot.is_none(), "fill into occupied way; evict first");
        *slot = Some(Entry { tag: self.geom.tag_of(block), payload });
        self.sets[set].lru.touch(way);
    }

    /// Iterates over occupied entries of one set as `(way, block,
    /// &payload)`.
    pub fn iter_set(&self, set: usize) -> impl Iterator<Item = (usize, BlockAddr, &P)> + '_ {
        self.sets[set].ways.iter().enumerate().filter_map(move |(way, slot)| {
            slot.as_ref().map(|e| (way, self.geom.block_of(e.tag, set), &e.payload))
        })
    }

    /// Iterates over all occupied entries as `(set, way, block,
    /// &payload)`.
    pub fn iter_all(&self) -> impl Iterator<Item = (usize, usize, BlockAddr, &P)> + '_ {
        (0..self.sets.len()).flat_map(move |set| {
            self.iter_set(set).map(move |(way, block, p)| (set, way, block, p))
        })
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.ways.iter().filter(|w| w.is_some()).count()).sum()
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<P: std::fmt::Debug> std::fmt::Debug for TagArray<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TagArray")
            .field("geometry", &self.geom)
            .field("occupied", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TagArray<u32> {
        // 4 sets, 2 ways, 64 B blocks.
        TagArray::new(CacheGeometry::new(512, 64, 2))
    }

    fn fill_block(t: &mut TagArray<u32>, block: BlockAddr, payload: u32) -> usize {
        let set = t.set_of(block);
        let way = t.victim_by(set, |e| if e.is_none() { 0 } else { 1 });
        t.evict(set, way);
        t.fill(set, way, block, payload);
        way
    }

    #[test]
    fn lookup_after_fill() {
        let mut t = small();
        let b = BlockAddr(5);
        let way = fill_block(&mut t, b, 99);
        assert_eq!(t.lookup(b), Some(way));
        assert_eq!(t.entry(t.set_of(b), way).unwrap().payload, 99);
        assert_eq!(t.block_at(t.set_of(b), way), Some(b));
    }

    #[test]
    fn conflicting_blocks_evict_lru() {
        let mut t = small();
        // Three blocks mapping to set 1 in a 2-way array.
        let b1 = BlockAddr(1);
        let b2 = BlockAddr(5);
        let b3 = BlockAddr(9);
        fill_block(&mut t, b1, 1);
        fill_block(&mut t, b2, 2);
        // Touch b1 so b2 is LRU.
        let w1 = t.lookup(b1).unwrap();
        t.touch(t.set_of(b1), w1);
        fill_block(&mut t, b3, 3);
        assert!(t.lookup(b1).is_some());
        assert!(t.lookup(b2).is_none(), "LRU entry should be the victim");
        assert!(t.lookup(b3).is_some());
    }

    #[test]
    fn victim_prefers_lower_rank_category() {
        let mut t = small();
        let b1 = BlockAddr(1);
        let b2 = BlockAddr(5);
        fill_block(&mut t, b1, 10); // payload 10 = "shared"
        fill_block(&mut t, b2, 20); // payload 20 = "private"
                                    // Rank: prefer evicting the "private" (20) entry despite b1
                                    // being older.
        let set = t.set_of(b1);
        let victim = t.victim_by(set, |e| match e {
            None => 0,
            Some(e) if e.payload == 20 => 1,
            Some(_) => 2,
        });
        assert_eq!(t.block_at(set, victim), Some(b2));
    }

    #[test]
    fn evict_returns_block_and_payload() {
        let mut t = small();
        let b = BlockAddr(7);
        let way = fill_block(&mut t, b, 42);
        let (evicted, payload) = t.evict(t.set_of(b), way).unwrap();
        assert_eq!(evicted, b);
        assert_eq!(payload, 42);
        assert!(t.lookup(b).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn evicted_way_becomes_preferred_victim() {
        let mut t = small();
        let b1 = BlockAddr(1);
        let b2 = BlockAddr(5);
        fill_block(&mut t, b1, 1);
        fill_block(&mut t, b2, 2);
        let w1 = t.lookup(b1).unwrap();
        let set = t.set_of(b1);
        t.evict(set, w1);
        // Plain LRU victim should be the just-vacated way.
        assert_eq!(t.victim_by(set, |_| 0), w1);
    }

    #[test]
    fn iter_set_reports_all_occupied_ways() {
        let mut t = small();
        fill_block(&mut t, BlockAddr(1), 1);
        fill_block(&mut t, BlockAddr(5), 2);
        let entries: Vec<_> = t.iter_set(1).collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn iter_all_spans_sets() {
        let mut t = small();
        fill_block(&mut t, BlockAddr(0), 1);
        fill_block(&mut t, BlockAddr(1), 2);
        fill_block(&mut t, BlockAddr(2), 3);
        assert_eq!(t.iter_all().count(), 3);
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn double_fill_panics() {
        let mut t = small();
        let b = BlockAddr(3);
        let set = t.set_of(b);
        t.fill(set, 0, b, 1);
        t.fill(set, 0, BlockAddr(7), 2);
    }

    #[test]
    #[should_panic(expected = "wrong set")]
    fn fill_checks_set_index() {
        let mut t = small();
        t.fill(0, 0, BlockAddr(1), 1); // block 1 belongs to set 1
    }
}

//! CMP-SNUCA: the non-uniform-shared baseline.
//!
//! The shared 8 MB cache is statically partitioned into 16 banks
//! spread over the chip (Section 4.2; similar to Piranha's banked
//! cache). Blocks are address-interleaved across banks; a request is
//! routed to its block's bank and pays that bank's distance-dependent
//! latency. There is **no replication and no migration** — the paper
//! notes that realistic CMP-DNUCA performs worse than CMP-SNUCA, so
//! only SNUCA is evaluated.
//!
//! L1 coherence is directory-style presence bits, exactly as in the
//! uniform-shared baseline.

use cmp_coherence::Bus;
use cmp_latency::{LatencyBook, SnucaLatencies};
use cmp_mem::{AccessKind, BlockAddr, CacheGeometry, CoreId, Cycle};

use crate::org::{AccessClass, AccessResponse, CacheOrg, InvalScratch, OrgStats};
use crate::tag_array::TagArray;

#[derive(Clone, Debug, Default)]
struct SnucaEntry {
    dirty: bool,
    l1_presence: u64,
}

/// The banked non-uniform shared L2.
///
/// # Example
///
/// ```
/// use cmp_cache::{CacheOrg, InvalScratch, Snuca};
/// use cmp_coherence::Bus;
/// use cmp_latency::LatencyBook;
/// use cmp_mem::{AccessKind, BlockAddr, CoreId};
///
/// let mut l2 = Snuca::paper(&LatencyBook::paper());
/// let mut bus = Bus::paper();
/// let mut inv = InvalScratch::new();
/// l2.access(CoreId(0), BlockAddr(0), AccessKind::Read, 0, &mut bus, &mut inv);
/// let hit = l2.access(CoreId(0), BlockAddr(0), AccessKind::Read, 100, &mut bus, &mut inv);
/// assert!(hit.class.is_hit());
/// assert!(hit.latency < 65); // mostly faster than the 59-cycle uniform cache
/// ```
pub struct Snuca {
    tags: TagArray<SnucaEntry>,
    latencies: SnucaLatencies,
    /// Per-core latency threshold under which a bank counts as
    /// "closest" for the hit-distance statistics.
    near_threshold: Vec<Cycle>,
    cores: usize,
    memory_latency: Cycle,
    stats: OrgStats,
}

impl Snuca {
    /// Creates the paper-scale configuration: 8 MB in 16 banks.
    pub fn paper(book: &LatencyBook) -> Self {
        Self::sized(book, cmp_mem::L2_TOTAL_BYTES)
    }

    /// The banked organization at an explicit total capacity; the bank
    /// *latency* grid comes from `book.snuca` (scaled to the core
    /// count), so the "nearest quartile" closeness threshold adapts to
    /// any bank grid.
    pub fn sized(book: &LatencyBook, total_bytes: usize) -> Self {
        let cores = book.cores();
        let latencies = book.snuca.clone();
        let near_threshold = CoreId::all(cores)
            .map(|c| {
                let mut lats: Vec<Cycle> =
                    (0..latencies.banks()).map(|b| latencies.latency(c, b)).collect();
                lats.sort_unstable();
                lats[lats.len() / 4] // nearest quartile
            })
            .collect();
        Snuca {
            tags: TagArray::new(CacheGeometry::new(total_bytes, cmp_mem::L2_BLOCK_BYTES, 32)),
            latencies,
            near_threshold,
            cores,
            memory_latency: book.memory,
            stats: OrgStats::default(),
        }
    }

    fn core_bit(core: CoreId) -> u64 {
        1 << core.index()
    }

    /// Hit latency for `core` accessing `block`'s bank.
    pub fn bank_latency(&self, core: CoreId, block: BlockAddr) -> Cycle {
        self.latencies.latency(core, self.latencies.bank_of(block))
    }
}

impl CacheOrg for Snuca {
    fn name(&self) -> &'static str {
        "snuca"
    }

    #[inline]
    fn access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        _now: Cycle,
        _bus: &mut Bus,
        inv: &mut InvalScratch,
    ) -> AccessResponse {
        inv.begin();
        let set = self.tags.set_of(block);
        let lat = self.bank_latency(core, block);
        let resp;
        if let Some(way) = self.tags.lookup(block) {
            self.tags.touch(set, way);
            let closest = lat <= self.near_threshold[core.index()];
            resp = AccessResponse::simple(lat, AccessClass::Hit { closest });
            let entry = self.tags.entry_mut(set, way).expect("hit entry exists");
            if kind.is_write() {
                entry.payload.dirty = true;
                let others = entry.payload.l1_presence & !Self::core_bit(core);
                entry.payload.l1_presence &= !others;
                for c in CoreId::all(self.cores) {
                    if others & Self::core_bit(c) != 0 {
                        inv.push(c, block);
                    }
                }
            }
            entry.payload.l1_presence |= Self::core_bit(core);
        } else {
            resp = AccessResponse::simple(lat + self.memory_latency, AccessClass::MissCapacity);
            let victim_way = self.tags.victim_by(set, |e| u32::from(e.is_some()));
            if let Some((victim_block, payload)) = self.tags.evict(set, victim_way) {
                if payload.dirty {
                    self.stats.writebacks += 1;
                }
                for c in CoreId::all(self.cores) {
                    if payload.l1_presence & Self::core_bit(c) != 0 {
                        inv.push(c, victim_block);
                    }
                }
            }
            self.tags.fill(
                set,
                victim_way,
                block,
                SnucaEntry { dirty: kind.is_write(), l1_presence: Self::core_bit(core) },
            );
        }
        self.stats.l1_invalidations += inv.len() as u64;
        self.stats.record_class(resp.class);
        resp
    }

    fn stats(&self) -> &OrgStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OrgStats::default();
    }

    fn cores(&self) -> usize {
        self.cores
    }
}

impl std::fmt::Debug for Snuca {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snuca")
            .field("banks", &self.latencies.banks())
            .field("occupied", &self.tags.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_snuca() -> Snuca {
        Snuca::paper(&LatencyBook::paper())
    }

    use crate::org::CollectedResponse;

    fn rd(l2: &mut Snuca, core: u8, block: u64) -> CollectedResponse {
        let mut bus = Bus::paper();
        l2.access_collected(CoreId(core), BlockAddr(block), AccessKind::Read, 0, &mut bus)
    }

    #[test]
    fn hit_latency_varies_by_bank() {
        let mut l2 = paper_snuca();
        let mut latencies = std::collections::BTreeSet::new();
        for b in 0..16u64 {
            rd(&mut l2, 0, b);
            latencies.insert(rd(&mut l2, 0, b).latency);
        }
        assert!(latencies.len() > 3, "expected a spread of bank latencies, got {latencies:?}");
    }

    #[test]
    fn near_banks_classify_as_closest() {
        let mut l2 = paper_snuca();
        let (mut near, mut far) = (0u64, 0u64);
        for b in 0..16u64 {
            rd(&mut l2, 0, b);
            match rd(&mut l2, 0, b).class {
                AccessClass::Hit { closest: true } => near += 1,
                AccessClass::Hit { closest: false } => far += 1,
                _ => panic!("expected hit"),
            }
        }
        assert!(near >= 2 && far >= 8, "near={near} far={far}");
    }

    #[test]
    fn mean_hit_latency_beats_uniform_shared() {
        let mut l2 = paper_snuca();
        let mut total = 0u64;
        for b in 0..64u64 {
            rd(&mut l2, 0, b);
            total += rd(&mut l2, 0, b).latency;
        }
        let mean = total as f64 / 64.0;
        assert!(mean < 55.0, "SNUCA mean {mean} should beat the 59-cycle uniform cache");
        assert!(mean > 20.0, "SNUCA mean {mean} should lose to the 10-cycle private cache");
    }

    #[test]
    fn no_replication_single_copy_semantics() {
        let mut l2 = paper_snuca();
        rd(&mut l2, 0, 7);
        let other = rd(&mut l2, 3, 7);
        assert!(other.class.is_hit(), "other cores hit the single copy");
        // The hit latency for P3 is that core's distance to the bank,
        // not a local copy.
        assert_eq!(other.latency, l2.bank_latency(CoreId(3), BlockAddr(7)));
    }

    #[test]
    fn write_invalidates_remote_l1s() {
        let mut l2 = paper_snuca();
        rd(&mut l2, 0, 7);
        rd(&mut l2, 1, 7);
        let mut bus = Bus::paper();
        let w = l2.access_collected(CoreId(0), BlockAddr(7), AccessKind::Write, 0, &mut bus);
        assert_eq!(w.l1_invalidate, vec![(CoreId(1), BlockAddr(7))]);
    }
}

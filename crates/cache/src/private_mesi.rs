//! The private-cache baseline: per-core 2 MB L2s kept coherent with
//! snoopy MESI.
//!
//! Each core has its own 2 MB, 8-way L2 (10-cycle hits, Table 1). On
//! a miss the request goes on the 32-cycle snoopy bus; if another
//! core's L2 holds the block it supplies it cache-to-cache, otherwise
//! memory does. Misses are classified as in Section 5.1.1: **ROS**
//! when another copy exists in a clean/shared state, **RWS** when a
//! dirty copy exists, **capacity** otherwise.
//!
//! The per-entry reuse counters implement Figure 7: at *replacement*
//! a block that was filled by an ROS miss records its reuse count in
//! the ROS histogram; at *invalidation* a block filled by an RWS miss
//! records into the RWS histogram.

use cmp_coherence::mesi::{self, MesiState};
use cmp_coherence::{Bus, BusTx, SnoopSignals};
use cmp_latency::LatencyBook;
use cmp_mem::{AccessKind, BlockAddr, CacheGeometry, CoreId, Cycle, Rng};

use crate::org::{AccessClass, AccessResponse, CacheOrg, InvalScratch, OrgStats};
use crate::tag_array::TagArray;
use crate::violation::Violation;

/// How a block originally entered a private cache (for Figure 7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FillClass {
    /// Filled by a read-only-sharing miss.
    Ros,
    /// Filled by a read-write-sharing miss.
    Rws,
    /// Filled from memory (demand/capacity).
    Demand,
}

#[derive(Clone, Debug)]
struct PrivEntry {
    state: MesiState,
    reuse: u64,
    fill: FillClass,
}

/// Four private 2 MB MESI caches on a snoopy bus.
///
/// # Example
///
/// ```
/// use cmp_cache::{CacheOrg, InvalScratch, PrivateMesi};
/// use cmp_coherence::Bus;
/// use cmp_latency::LatencyBook;
/// use cmp_mem::{AccessKind, BlockAddr, CoreId};
///
/// let mut l2 = PrivateMesi::paper(&LatencyBook::paper());
/// let mut bus = Bus::paper();
/// let mut inv = InvalScratch::new();
/// l2.access(CoreId(0), BlockAddr(9), AccessKind::Read, 0, &mut bus, &mut inv);
/// let hit = l2.access(CoreId(0), BlockAddr(9), AccessKind::Read, 400, &mut bus, &mut inv);
/// assert_eq!(hit.latency, 10);
/// ```
pub struct PrivateMesi {
    arrays: Vec<TagArray<PrivEntry>>,
    tag_latency: Cycle,
    hit_latency: Cycle,
    memory_latency: Cycle,
    stats: OrgStats,
}

impl PrivateMesi {
    /// Creates per-core private caches with the given geometry and
    /// latencies.
    pub fn new(
        cores: usize,
        geom: CacheGeometry,
        tag_latency: Cycle,
        hit_latency: Cycle,
        memory_latency: Cycle,
    ) -> Self {
        assert!(cores > 0, "at least one core required");
        PrivateMesi {
            arrays: (0..cores).map(|_| TagArray::new(geom)).collect(),
            tag_latency,
            hit_latency,
            memory_latency,
            stats: OrgStats::default(),
        }
    }

    /// The paper's configuration: one 2 MB 8-way cache per core.
    pub fn paper(book: &LatencyBook) -> Self {
        Self::sized(book, cmp_mem::L2_TOTAL_BYTES)
    }

    /// Private caches at an explicit *total* capacity, divided evenly
    /// over the cores (rounded to the next power of two).
    pub fn sized(book: &LatencyBook, total_bytes: usize) -> Self {
        PrivateMesi::new(
            book.cores(),
            CacheGeometry::new(
                total_bytes / book.cores().next_power_of_two(),
                cmp_mem::L2_BLOCK_BYTES,
                8,
            ),
            book.private_tag,
            book.private_total,
            book.memory,
        )
    }

    /// MESI state of `block` in `core`'s cache (test/diagnostic hook).
    pub fn state_of(&self, core: CoreId, block: BlockAddr) -> MesiState {
        let arr = &self.arrays[core.index()];
        arr.lookup(block)
            .and_then(|way| arr.entry(arr.set_of(block), way))
            .map_or(MesiState::Invalid, |e| e.payload.state)
    }

    /// Snoop signals as sampled by `requestor` for `block`.
    fn signals_for(&self, requestor: CoreId, block: BlockAddr) -> SnoopSignals {
        let mut sig = SnoopSignals::NONE;
        for (i, arr) in self.arrays.iter().enumerate() {
            if i == requestor.index() {
                continue;
            }
            if let Some(way) = arr.lookup(block) {
                let state =
                    arr.entry(arr.set_of(block), way).expect("looked-up entry").payload.state;
                if state.is_valid() {
                    sig.shared = true;
                    if state.is_dirty() {
                        sig.dirty = true;
                    }
                }
            }
        }
        sig
    }

    /// Applies snoop transitions at every remote core; returns whether
    /// any remote cache supplied the block.
    fn snoop_remotes(
        &mut self,
        requestor: CoreId,
        block: BlockAddr,
        tx: BusTx,
        inv: &mut InvalScratch,
    ) -> bool {
        let mut supplied = false;
        for i in 0..self.arrays.len() {
            if i == requestor.index() {
                continue;
            }
            let arr = &mut self.arrays[i];
            let Some(way) = arr.lookup(block) else { continue };
            let set = arr.set_of(block);
            let state = arr.entry(set, way).expect("looked-up entry").payload.state;
            let (next, reply) = mesi::snoop(state, tx);
            if reply.flush {
                supplied = true;
                if state.is_dirty() {
                    // Dirty flush also updates memory.
                    self.stats.writebacks += 1;
                }
            }
            if next == MesiState::Invalid {
                let (_, payload) = arr.evict(set, way).expect("invalidated entry present");
                if payload.fill == FillClass::Rws {
                    self.stats.rws_reuse.record(payload.reuse);
                }
            } else {
                arr.entry_mut(set, way).expect("looked-up entry").payload.state = next;
            }
            if reply.invalidate_l1 {
                inv.push(CoreId(i as u8), block);
            }
        }
        supplied
    }

    /// Makes room in `core`'s cache for `block`; returns the L1
    /// inclusion invalidation if a valid victim was evicted.
    fn evict_victim(&mut self, core: CoreId, block: BlockAddr) -> Option<(CoreId, BlockAddr)> {
        let arr = &mut self.arrays[core.index()];
        let set = arr.set_of(block);
        let way = arr.victim_by(set, |e| u32::from(e.is_some()));
        let (victim_block, payload) = arr.evict(set, way)?;
        if payload.state.is_dirty() {
            self.stats.writebacks += 1;
        }
        match payload.fill {
            FillClass::Ros => self.stats.ros_reuse.record(payload.reuse),
            FillClass::Rws | FillClass::Demand => {}
        }
        if payload.state.is_private() {
            self.stats.evictions_private += 1;
        } else {
            self.stats.evictions_shared += 1;
        }
        Some((core, victim_block))
    }
}

impl CacheOrg for PrivateMesi {
    fn name(&self) -> &'static str {
        "private"
    }

    #[inline]
    fn access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        now: Cycle,
        bus: &mut Bus,
        inv: &mut InvalScratch,
    ) -> AccessResponse {
        match CacheOrg::try_access(self, core, block, kind, now, bus, inv) {
            Ok(resp) => resp,
            Err(v) => panic!("private-MESI protocol violation: {v}"),
        }
    }

    fn try_access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: AccessKind,
        now: Cycle,
        bus: &mut Bus,
        inv: &mut InvalScratch,
    ) -> Result<AccessResponse, Violation> {
        inv.begin();
        let arr = &self.arrays[core.index()];
        let set = arr.set_of(block);
        let hit_way = arr.lookup(block);
        let mut resp;
        if let Some(way) = hit_way {
            let state = arr.entry(set, way).expect("hit entry").payload.state;
            debug_assert!(state.is_valid(), "invalid entries are evicted eagerly");
            let action = mesi::processor_access(state, kind, SnoopSignals::NONE);
            let mut latency = self.hit_latency;
            resp = AccessResponse::simple(0, AccessClass::Hit { closest: true });
            if let Some(tx) = action.bus {
                debug_assert_eq!(tx, BusTx::BusUpg, "the only hit-side transaction is an upgrade");
                let grant = bus.transact(tx, now);
                latency = self.tag_latency
                    + grant.stall_from(now)
                    + (self.hit_latency - self.tag_latency);
                self.snoop_remotes(core, block, tx, inv);
            }
            resp.latency = latency;
            let arr = &mut self.arrays[core.index()];
            arr.touch(set, way);
            let entry = arr.entry_mut(set, way).expect("hit entry");
            entry.payload.state = action.next;
            entry.payload.reuse += 1;
        } else {
            // Miss: sample snoop wires (through the bus, so the audit
            // harness's fault plan can tamper with them), classify,
            // transact, fill.
            let signals = bus.sample_signals(self.signals_for(core, block));
            let class = if signals.dirty {
                AccessClass::MissRws
            } else if signals.shared {
                AccessClass::MissRos
            } else {
                AccessClass::MissCapacity
            };
            resp = AccessResponse::simple(0, class);
            let action = mesi::processor_access(MesiState::Invalid, kind, signals);
            let tx = action.bus.expect("misses always use the bus");
            let grant = bus.transact(tx, now);
            let supplied = self.snoop_remotes(core, block, tx, inv);
            // Consistency of the sampled wires against what the snoop
            // actually did. On BusRd every valid remote copy flushes,
            // so `shared` and `supplied` must agree; on BusRdX a dirty
            // remote copy always flushes.
            if tx == BusTx::BusRd && signals.shared != supplied {
                return Err(Violation::at(
                    "shared-signal-has-supplier",
                    core,
                    block,
                    format!("shared wire ({}) matching a remote supplier", signals.shared),
                    format!("supplied = {supplied}"),
                ));
            }
            if signals.dirty && !supplied {
                return Err(Violation::at(
                    "dirty-signal-has-supplier",
                    core,
                    block,
                    "a dirty remote copy flushing behind an asserted dirty wire",
                    "no remote flush",
                ));
            }
            let transfer = if supplied { self.hit_latency } else { self.memory_latency };
            resp.latency = self.tag_latency + grant.stall_from(now) + transfer;
            if let Some((victim_core, victim_block)) = self.evict_victim(core, block) {
                inv.push(victim_core, victim_block);
            }
            let fill = match class {
                AccessClass::MissRos => FillClass::Ros,
                AccessClass::MissRws => FillClass::Rws,
                _ => FillClass::Demand,
            };
            let arr = &mut self.arrays[core.index()];
            let way = arr.victim_by(set, |e| u32::from(e.is_some()));
            debug_assert!(arr.entry(set, way).is_none(), "victim slot was vacated");
            arr.fill(set, way, block, PrivEntry { state: action.next, reuse: 0, fill });
        }
        self.stats.l1_invalidations += inv.len() as u64;
        self.stats.record_class(resp.class);
        Ok(resp)
    }

    fn stats(&self) -> &OrgStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OrgStats::default();
    }

    fn cores(&self) -> usize {
        self.arrays.len()
    }

    fn audit(&self) -> Result<(), Violation> {
        // MESI structural redundancy: per block, at most one dirty
        // copy, and a private-state (M/E) copy is the *only* copy.
        let mut holders: std::collections::HashMap<BlockAddr, Vec<(CoreId, MesiState)>> =
            std::collections::HashMap::new();
        for (i, arr) in self.arrays.iter().enumerate() {
            for (_, _, block, e) in arr.iter_all() {
                if e.state.is_valid() {
                    holders.entry(block).or_default().push((CoreId(i as u8), e.state));
                }
            }
        }
        for (block, hs) in &holders {
            let dirty = hs.iter().filter(|(_, s)| s.is_dirty()).count();
            if dirty > 1 {
                return Err(Violation::on_block(
                    "dirty-singleton",
                    *block,
                    "at most 1 dirty copy",
                    format!("{dirty} dirty copies in {hs:?}"),
                ));
            }
            if hs.iter().any(|(_, s)| s.is_private()) && hs.len() != 1 {
                return Err(Violation::on_block(
                    "private-implies-sole-copy",
                    *block,
                    "an M/E copy being the only on-chip copy",
                    format!("{} copies in {hs:?}", hs.len()),
                ));
            }
        }
        Ok(())
    }

    fn inject_tag_fault(&mut self, rng: &mut Rng) -> Option<String> {
        // Promote one sharer of a multi-holder block to Modified: the
        // audit's private-implies-sole-copy check is guaranteed to
        // fire. Without a shared block there is nothing to corrupt
        // detectably.
        let mut shared: Vec<(CoreId, BlockAddr)> = Vec::new();
        let mut count: std::collections::HashMap<BlockAddr, usize> =
            std::collections::HashMap::new();
        for (i, arr) in self.arrays.iter().enumerate() {
            for (_, _, block, e) in arr.iter_all() {
                if e.state.is_valid() {
                    *count.entry(block).or_default() += 1;
                    shared.push((CoreId(i as u8), block));
                }
            }
        }
        shared.retain(|(_, b)| count[b] > 1);
        if shared.is_empty() {
            return None;
        }
        let (core, block) = shared[rng.gen_index(shared.len())];
        let arr = &mut self.arrays[core.index()];
        let set = arr.set_of(block);
        let way = arr.lookup(block)?;
        arr.entry_mut(set, way)?.payload.state = MesiState::Modified;
        Some(format!("forced {core} copy of {block} to Modified alongside other sharers"))
    }
}

impl std::fmt::Debug for PrivateMesi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrivateMesi")
            .field("cores", &self.arrays.len())
            .field("occupied", &self.arrays.iter().map(TagArray::len).sum::<usize>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_mem::ReuseBucket;

    fn paper_private() -> (PrivateMesi, Bus) {
        (PrivateMesi::paper(&LatencyBook::paper()), Bus::paper())
    }

    use std::cell::Cell;

    thread_local! {
        /// Monotonic per-test clock so consecutive accesses do not
        /// queue behind each other on the bus.
        static NOW: Cell<Cycle> = const { Cell::new(0) };
    }

    fn tick() -> Cycle {
        NOW.with(|t| {
            let now = t.get() + 1_000;
            t.set(now);
            now
        })
    }

    use crate::org::CollectedResponse;

    fn rd(l2: &mut PrivateMesi, bus: &mut Bus, core: u8, block: u64) -> CollectedResponse {
        l2.access_collected(CoreId(core), BlockAddr(block), AccessKind::Read, tick(), bus)
    }

    fn wr(l2: &mut PrivateMesi, bus: &mut Bus, core: u8, block: u64) -> CollectedResponse {
        l2.access_collected(CoreId(core), BlockAddr(block), AccessKind::Write, tick(), bus)
    }

    #[test]
    fn local_hit_is_ten_cycles() {
        let (mut l2, mut bus) = paper_private();
        rd(&mut l2, &mut bus, 0, 9);
        let hit = rd(&mut l2, &mut bus, 0, 9);
        assert_eq!(hit.latency, 10);
        assert_eq!(l2.state_of(CoreId(0), BlockAddr(9)), MesiState::Exclusive);
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let (mut l2, mut bus) = paper_private();
        let miss = rd(&mut l2, &mut bus, 0, 9);
        assert_eq!(miss.class, AccessClass::MissCapacity);
        // tag (4) + bus (32) + memory (300).
        assert_eq!(miss.latency, 4 + 32 + 300);
    }

    #[test]
    fn read_sharing_classifies_ros_and_transfers_on_chip() {
        let (mut l2, mut bus) = paper_private();
        rd(&mut l2, &mut bus, 0, 9);
        let miss = rd(&mut l2, &mut bus, 1, 9);
        assert_eq!(miss.class, AccessClass::MissRos);
        // tag (4) + bus (32) + remote cache (10): far cheaper than memory.
        assert_eq!(miss.latency, 4 + 32 + 10);
        assert_eq!(l2.state_of(CoreId(0), BlockAddr(9)), MesiState::Shared);
        assert_eq!(l2.state_of(CoreId(1), BlockAddr(9)), MesiState::Shared);
    }

    #[test]
    fn dirty_sharing_classifies_rws() {
        let (mut l2, mut bus) = paper_private();
        wr(&mut l2, &mut bus, 0, 9);
        let miss = rd(&mut l2, &mut bus, 1, 9);
        assert_eq!(miss.class, AccessClass::MissRws);
        assert_eq!(l2.state_of(CoreId(0), BlockAddr(9)), MesiState::Shared);
    }

    #[test]
    fn write_invalidates_remote_copies_and_l1s() {
        let (mut l2, mut bus) = paper_private();
        rd(&mut l2, &mut bus, 0, 9);
        rd(&mut l2, &mut bus, 1, 9);
        let w = wr(&mut l2, &mut bus, 0, 9);
        assert_eq!(l2.state_of(CoreId(0), BlockAddr(9)), MesiState::Modified);
        assert_eq!(l2.state_of(CoreId(1), BlockAddr(9)), MesiState::Invalid);
        assert!(w.l1_invalidate.contains(&(CoreId(1), BlockAddr(9))));
    }

    #[test]
    fn coherence_ping_pong_costs_misses_every_round() {
        // The RWS pattern ISC eliminates: writer invalidates reader,
        // reader misses again.
        let (mut l2, mut bus) = paper_private();
        wr(&mut l2, &mut bus, 0, 9);
        for _ in 0..5 {
            let r = rd(&mut l2, &mut bus, 1, 9);
            assert_eq!(r.class, AccessClass::MissRws);
            wr(&mut l2, &mut bus, 0, 9);
        }
        assert_eq!(l2.stats().miss_rws, 5);
    }

    #[test]
    fn rws_reuse_recorded_at_invalidation() {
        let (mut l2, mut bus) = paper_private();
        wr(&mut l2, &mut bus, 0, 9);
        rd(&mut l2, &mut bus, 1, 9); // P1 fills via RWS miss
        rd(&mut l2, &mut bus, 1, 9); // reuse 1
        rd(&mut l2, &mut bus, 1, 9); // reuse 2
        wr(&mut l2, &mut bus, 0, 9); // invalidates P1's copy
        assert_eq!(l2.stats().rws_reuse.count(ReuseBucket::TwoToFive), 1);
    }

    #[test]
    fn ros_reuse_recorded_at_replacement() {
        let book = LatencyBook::paper();
        // Tiny private caches (4 sets x 2 ways) to force replacements.
        let mut l2 = PrivateMesi::new(2, CacheGeometry::new(1024, 128, 2), 4, 10, 300);
        let mut bus = Bus::paper();
        let _ = book;
        // P0 owns block 1; P1 reads it (ROS fill), reuses once, then
        // conflicts it out with blocks 5 and 9 (same set).
        rd(&mut l2, &mut bus, 0, 1);
        rd(&mut l2, &mut bus, 1, 1);
        rd(&mut l2, &mut bus, 1, 1);
        rd(&mut l2, &mut bus, 1, 5);
        rd(&mut l2, &mut bus, 1, 9);
        assert_eq!(l2.stats().ros_reuse.count(ReuseBucket::One), 1);
    }

    #[test]
    fn upgrade_write_pays_bus_latency() {
        let (mut l2, mut bus) = paper_private();
        rd(&mut l2, &mut bus, 0, 9);
        rd(&mut l2, &mut bus, 1, 9); // both now Shared
        let w = wr(&mut l2, &mut bus, 0, 9);
        assert!(w.class.is_hit(), "upgrade is a hit, not a miss");
        assert!(w.latency > 10, "upgrade must pay for the BusUpg, got {}", w.latency);
    }

    #[test]
    fn capacity_is_2mb_per_core() {
        let l2 = PrivateMesi::paper(&LatencyBook::paper());
        assert_eq!(l2.arrays[0].geometry().capacity_bytes(), 2 * 1024 * 1024);
        assert_eq!(l2.cores(), 4);
    }
}

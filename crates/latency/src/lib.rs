#![warn(missing_docs)]

//! Analytical latency model for the CMP-NuRAPID reproduction.
//!
//! The paper derives its cache latencies (Table 1) from a modified
//! Cacti 3.2 at 70 nm / 5 GHz, treating each d-group as an independent
//! tagless cache and accounting for RC wire delay to route around
//! closer d-groups. Cacti itself is a C tool we cannot ship, so this
//! crate implements the same two ingredients analytically:
//!
//! * [`subarray`] — SRAM array access time as a function of capacity,
//!   associativity, and port count (square-root subarray scaling);
//! * [`wire`] — repeated-RC global wire delay in cycles per millimetre;
//! * [`floorplan`] — the 2 × 2 d-group chip layout of the paper's
//!   Figure 1 plus the 4 × 4 banked layout used for CMP-SNUCA,
//!   yielding per-(core, region) routing distances.
//!
//! [`Table1::from_model`] combines them and reproduces the paper's
//! published Table 1 exactly; [`Table1::published`] pins the published
//! numbers as constants. The simulator consumes [`LatencyBook`], which
//! is built from either source.
//!
//! # Example
//!
//! ```
//! use cmp_latency::Table1;
//!
//! let model = Table1::from_model();
//! assert_eq!(model, Table1::published());
//! assert_eq!(model.shared_total(), 59);
//! ```

pub mod energy;
pub mod floorplan;
pub mod snuca;
pub mod subarray;
pub mod table1;
pub mod wire;

pub use floorplan::Floorplan;
pub use snuca::SnucaLatencies;
pub use table1::Table1;

use cmp_mem::{CoreId, Cycle, MEMORY_LATENCY};

/// Every latency the system simulator needs, in one place.
///
/// Constructed from [`Table1`] (published or model-derived) plus the
/// SNUCA bank latencies and the fixed L1/memory numbers from
/// Section 4.1 of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyBook {
    /// L1 hit latency (3 cycles in the paper).
    pub l1: Cycle,
    /// Main memory latency (300 cycles).
    pub memory: Cycle,
    /// Uniform-shared L2: tag latency (includes central-tag wire delay).
    pub shared_tag: Cycle,
    /// Uniform-shared L2: total hit latency (tag + data).
    pub shared_total: Cycle,
    /// Private L2: tag latency.
    pub private_tag: Cycle,
    /// Private L2: total hit latency.
    pub private_total: Cycle,
    /// CMP-NuRAPID: private tag array latency (with doubled tag space).
    pub nurapid_tag: Cycle,
    /// CMP-NuRAPID: d-group data latencies from each core's viewpoint,
    /// indexed `[core][dgroup]`.
    pub dgroup: Vec<Vec<Cycle>>,
    /// CMP-SNUCA: per-(core, bank) hit latencies.
    pub snuca: SnucaLatencies,
    /// Pipelined split-transaction bus latency.
    pub bus: Cycle,
    /// The ideal cache's hit latency (shared capacity at private
    /// latency — Section 5.1.1).
    pub ideal_total: Cycle,
}

impl LatencyBook {
    /// Builds the book from a [`Table1`] for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn from_table1(t: &Table1, cores: usize) -> Self {
        assert!(cores > 0, "at least one core required");
        let fp = Floorplan::paper(cores);
        let dgroup = CoreId::all(cores)
            .map(|c| (0..cores).map(|g| t.dgroup_data(fp.dgroup_distance_rank(c, g))).collect())
            .collect();
        LatencyBook {
            l1: 3,
            memory: MEMORY_LATENCY,
            shared_tag: t.shared_tag(),
            shared_total: t.shared_total(),
            private_tag: t.private_tag(),
            private_total: t.private_total(),
            nurapid_tag: t.nurapid_tag(),
            dgroup,
            snuca: SnucaLatencies::paper(cores),
            bus: t.bus(),
            ideal_total: t.private_total(),
        }
    }

    /// The book for the paper's published Table 1 and 4 cores.
    pub fn paper() -> Self {
        Self::from_table1(&Table1::published(), cmp_mem::PAPER_CORES)
    }

    /// Number of cores (and d-groups) this book covers.
    pub fn cores(&self) -> usize {
        self.dgroup.len()
    }

    /// Data latency of d-group `g` as seen by `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` or `g` is out of range.
    pub fn dgroup_latency(&self, core: CoreId, g: usize) -> Cycle {
        self.dgroup[core.index()][g]
    }
}

impl Default for LatencyBook {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_book_matches_table1_values() {
        let book = LatencyBook::paper();
        assert_eq!(book.shared_total, 59);
        assert_eq!(book.shared_tag, 26);
        assert_eq!(book.private_total, 10);
        assert_eq!(book.private_tag, 4);
        assert_eq!(book.nurapid_tag, 5);
        assert_eq!(book.bus, 32);
        assert_eq!(book.l1, 3);
        assert_eq!(book.memory, 300);
        assert_eq!(book.ideal_total, 10);
    }

    #[test]
    fn dgroup_latencies_follow_figure1_symmetry() {
        let book = LatencyBook::paper();
        // From P0's viewpoint: a=6, b=20, c=20, d=33 (Table 1).
        assert_eq!(book.dgroup[0], vec![6, 20, 20, 33]);
        // Results are symmetric for other cores (Section 4.2): each core
        // sees 6 at its own d-group and 33 at the diagonal one.
        for c in 0..4 {
            let mut sorted = book.dgroup[c].clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![6, 20, 20, 33]);
            assert_eq!(book.dgroup[c][c], 6);
        }
    }

    #[test]
    fn dgroup_closest_is_own_for_each_core() {
        let book = LatencyBook::paper();
        for c in 0..4 {
            let own = book.dgroup_latency(CoreId(c as u8), c);
            assert!(book.dgroup[c].iter().all(|&l| l >= own));
        }
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(LatencyBook::default(), LatencyBook::paper());
    }

    #[test]
    fn big_machine_books_keep_own_dgroup_at_table1_near_latency() {
        // At 8/16/64 cores each core still abuts its own d-group, so
        // the diagonal of the d-group matrix stays at Table 1's
        // 6-cycle "own d-group" latency; far d-groups saturate at the
        // 33-cycle diagonal value (`Table1::dgroup_data` clamps ranks
        // beyond the published table — documented capacity-model
        // simplification for big machines).
        for cores in [8usize, 16, 64] {
            let book = LatencyBook::from_table1(&Table1::published(), cores);
            assert_eq!(book.cores(), cores);
            for c in 0..cores {
                assert_eq!(book.dgroup[c][c], 6, "own d-group at {cores} cores");
                assert!(
                    book.dgroup[c].iter().all(|&l| (6..=33).contains(&l)),
                    "d-group latency out of Table 1 range at {cores} cores"
                );
            }
            // Far d-groups really do saturate (rank >= 2 exists).
            assert!(book.dgroup[0].contains(&33));
        }
    }
}

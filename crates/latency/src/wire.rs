//! Global-wire delay model.
//!
//! At 70 nm, global wires with optimally spaced repeaters have a delay
//! that is linear in length. Projections used by the NUCA and NuRAPID
//! papers put repeated-wire delay around 500 ps/mm at that node; at the
//! paper's 5 GHz clock (200 ps/cycle) that is ~2.5–2.7 cycles/mm. We
//! calibrate to **2.6 cycles/mm**, which reproduces every wire-derived
//! entry of Table 1 (see [`crate::table1`]).

use cmp_mem::Cycle;

/// Repeated global wire delay, cycles per millimetre, at 70 nm / 5 GHz.
pub const CYCLES_PER_MM: f64 = 2.6;

/// Delay in cycles of a repeated wire of `mm` millimetres, rounded to
/// the nearest cycle.
///
/// # Panics
///
/// Panics if `mm` is negative or non-finite.
///
/// # Example
///
/// ```
/// use cmp_latency::wire::wire_cycles;
///
/// assert_eq!(wire_cycles(0.0), 0);
/// assert_eq!(wire_cycles(5.2), 14); // lateral d-group hop
/// ```
pub fn wire_cycles(mm: f64) -> Cycle {
    assert!(mm >= 0.0 && mm.is_finite(), "wire length must be finite and nonnegative");
    (mm * CYCLES_PER_MM).round() as Cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_is_free() {
        assert_eq!(wire_cycles(0.0), 0);
    }

    #[test]
    fn delay_is_monotonic_in_length() {
        let mut last = 0;
        for tenths in 0..200 {
            let c = wire_cycles(tenths as f64 / 10.0);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn table1_wire_segments() {
        // The three routing distances that produce Table 1's non-uniform
        // entries (see crate::floorplan for their derivation).
        assert_eq!(wire_cycles(5.2), 14); // lateral d-group (6 + 14 = 20)
        assert_eq!(wire_cycles(10.4), 27); // diagonal d-group (6 + 27 = 33)
        assert_eq!(wire_cycles(7.7), 20); // corner -> central shared tag (6 + 20 = 26)
        assert_eq!(wire_cycles(12.3), 32); // farthest tag array span = bus
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn rejects_negative_length() {
        let _ = wire_cycles(-1.0);
    }
}

//! Table 1 of the paper: 8 MB cache and bus latencies.
//!
//! Two constructors are provided: [`Table1::published`] pins the
//! numbers printed in the paper, and [`Table1::from_model`] derives
//! the same numbers from the analytical subarray/wire/floorplan model
//! (this crate's substitute for the authors' modified Cacti 3.2). A
//! unit test asserts the two agree, which is the calibration contract
//! of the whole latency model.

use std::fmt;

use cmp_mem::{CoreId, Cycle};

use crate::floorplan::{Floorplan, BUS_SPAN_MM, CENTRAL_TAG_MM};
use crate::subarray::{data_array_cycles, tag_array_cycles};
use crate::wire::wire_cycles;

/// Latencies of Table 1 (cycles), from core P0's perspective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1 {
    shared_tag: Cycle,
    shared_data: Cycle,
    private_tag: Cycle,
    private_data: Cycle,
    nurapid_tag: Cycle,
    /// Data latency by d-group *distance rank* (0 = own, 1 = lateral,
    /// 2 = diagonal, ...).
    dgroup_by_rank: Vec<Cycle>,
    bus: Cycle,
}

impl Table1 {
    /// The latencies as printed in the paper.
    pub fn published() -> Self {
        Table1 {
            shared_tag: 26,
            shared_data: 33,
            private_tag: 4,
            private_data: 6,
            nurapid_tag: 5,
            dgroup_by_rank: vec![6, 20, 33],
            bus: 32,
        }
    }

    /// Derives the latencies from the analytical model.
    ///
    /// * shared 8 MB 32-way cache, rated as 8-way 1-port (Section 4.2):
    ///   tag = 64 K-entry array + wire to the centrally placed tag;
    ///   data = one 2 MB quadrant + worst-case span of the array;
    /// * private 2 MB 8-way: 16 K-entry tag, 2 MB data, both adjacent;
    /// * CMP-NuRAPID: doubled (32 K-entry) tag; d-group data latency is
    ///   the 2 MB array plus the routing hops from the floorplan;
    /// * bus: the wire span needed to reach the farthest tag array.
    pub fn from_model() -> Self {
        let fp = Floorplan::paper(4);
        let quadrant = data_array_cycles(2 * 1024 * 1024);
        let max_rank =
            (0..4).map(|g| fp.dgroup_distance_rank(CoreId(0), g)).max().expect("four d-groups");
        let dgroup_by_rank = (0..=max_rank)
            .map(|rank| quadrant + wire_cycles(rank as f64 * crate::floorplan::LATERAL_HOP_MM))
            .collect::<Vec<_>>();
        Table1 {
            shared_tag: tag_array_cycles(64 * 1024) + wire_cycles(CENTRAL_TAG_MM),
            shared_data: *dgroup_by_rank.last().expect("nonempty ranks"),
            private_tag: tag_array_cycles(16 * 1024),
            private_data: quadrant,
            nurapid_tag: tag_array_cycles(32 * 1024),
            dgroup_by_rank,
            bus: wire_cycles(BUS_SPAN_MM),
        }
    }

    /// Shared cache tag latency (includes central-tag wire delay).
    pub fn shared_tag(&self) -> Cycle {
        self.shared_tag
    }

    /// Shared cache data latency.
    pub fn shared_data(&self) -> Cycle {
        self.shared_data
    }

    /// Shared cache total hit latency (59 in the paper).
    pub fn shared_total(&self) -> Cycle {
        self.shared_tag + self.shared_data
    }

    /// Private cache tag latency.
    pub fn private_tag(&self) -> Cycle {
        self.private_tag
    }

    /// Private cache data latency.
    pub fn private_data(&self) -> Cycle {
        self.private_data
    }

    /// Private cache total hit latency (10 in the paper).
    pub fn private_total(&self) -> Cycle {
        self.private_tag + self.private_data
    }

    /// CMP-NuRAPID tag latency with the doubled tag space.
    pub fn nurapid_tag(&self) -> Cycle {
        self.nurapid_tag
    }

    /// D-group data latency for a floorplan distance rank; ranks past
    /// the table's end are clamped to the farthest entry.
    pub fn dgroup_data(&self, rank: usize) -> Cycle {
        let idx = rank.min(self.dgroup_by_rank.len() - 1);
        self.dgroup_by_rank[idx]
    }

    /// Bus latency (pipelined split-transaction bus).
    pub fn bus(&self) -> Cycle {
        self.bus
    }

    /// D-group latencies from P0's viewpoint in the paper's (a, b, c,
    /// d) order.
    pub fn dgroups_from_p0(&self) -> Vec<Cycle> {
        let fp = Floorplan::paper(4);
        (0..4).map(|g| self.dgroup_data(fp.dgroup_distance_rank(CoreId(0), g))).collect()
    }
}

impl Default for Table1 {
    fn default() -> Self {
        Self::published()
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1: 8 MB Cache and Bus Latencies")?;
        writeln!(f, "{}", "-".repeat(62))?;
        writeln!(f, "{:<48}Latency (cycles)", "Cache and Component")?;
        writeln!(f, "Shared 8 MB 32-way, 4 ports (latency of 8-way, 1-port)")?;
        writeln!(f, "  {:<46}{}", "Tag (includes wire delay of central tag)", self.shared_tag)?;
        writeln!(f, "  {:<46}{}", "Data", self.shared_data)?;
        writeln!(f, "  {:<46}{}", "Total", self.shared_total())?;
        writeln!(f, "Private 2 MB 8-way, 1 port")?;
        writeln!(f, "  {:<46}{}", "Tag", self.private_tag)?;
        writeln!(f, "  {:<46}{}", "Data", self.private_data)?;
        writeln!(f, "  {:<46}{}", "Total", self.private_total())?;
        writeln!(f, "CMP-NuRAPID with four 2 MB d-groups")?;
        writeln!(f, "  {:<46}{}", "Tag w/ extra tag space", self.nurapid_tag)?;
        let dgroups =
            self.dgroups_from_p0().iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",");
        writeln!(f, "  {:<46}{}", "Data d-groups (a,b,c,d)", dgroups)?;
        write!(f, "{:<48}{}", "Pipelined split-transaction bus (all designs)", self.bus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_reproduces_published_table() {
        assert_eq!(Table1::from_model(), Table1::published());
    }

    #[test]
    fn published_totals() {
        let t = Table1::published();
        assert_eq!(t.shared_total(), 59);
        assert_eq!(t.private_total(), 10);
        assert_eq!(t.dgroups_from_p0(), vec![6, 20, 20, 33]);
        assert_eq!(t.bus(), 32);
    }

    #[test]
    fn dgroup_rank_clamps_past_diagonal() {
        let t = Table1::published();
        assert_eq!(t.dgroup_data(2), t.dgroup_data(99));
    }

    #[test]
    fn display_contains_all_rows() {
        let s = Table1::published().to_string();
        assert!(s.contains("Shared 8 MB"));
        assert!(s.contains("26"));
        assert!(s.contains("59"));
        assert!(s.contains("6,20,20,33"));
        assert!(s.contains("32"));
    }

    #[test]
    fn default_is_published() {
        assert_eq!(Table1::default(), Table1::published());
    }
}

//! SRAM array access-time model.
//!
//! Cacti decomposes a cache access into decoder, wordline, bitline,
//! sense-amp, and output-driver delays, with the array split into
//! subarrays whose side grows with the square root of capacity. We use
//! the same asymptotics, calibrated at 70 nm / 5 GHz so that the
//! paper's structures land on their Table 1 values:
//!
//! * a 2 MB tagless data array (one d-group) accesses in 6 cycles;
//! * a 2 MB / 8-way tag array (16 K entries) in 4 cycles;
//! * doubling the tag entries adds one cycle (5 cycles, the
//!   CMP-NuRAPID doubled-tag configuration);
//! * the 8 MB shared cache's 64 K-entry tag array takes 6 cycles
//!   before wire delay.

use cmp_mem::Cycle;

/// Reference data-array capacity for the calibration point (2 MB).
const REFERENCE_DATA_BYTES: f64 = 2.0 * 1024.0 * 1024.0;

/// Access cycles of the reference 2 MB data array.
const REFERENCE_DATA_CYCLES: f64 = 6.0;

/// Access time in cycles of a tagless data array of `bytes` capacity.
///
/// Square-root subarray scaling: time grows with the array side, i.e.
/// with `sqrt(capacity)`.
///
/// # Panics
///
/// Panics if `bytes` is zero.
///
/// # Example
///
/// ```
/// use cmp_latency::subarray::data_array_cycles;
///
/// assert_eq!(data_array_cycles(2 * 1024 * 1024), 6); // one d-group
/// assert_eq!(data_array_cycles(512 * 1024), 3);      // one SNUCA bank
/// ```
pub fn data_array_cycles(bytes: usize) -> Cycle {
    assert!(bytes > 0, "data array capacity must be nonzero");
    let t = REFERENCE_DATA_CYCLES * (bytes as f64 / REFERENCE_DATA_BYTES).sqrt();
    (t.round() as Cycle).max(1)
}

/// Access time in cycles of a set-associative tag array with `entries`
/// tag entries.
///
/// Tag arrays are far smaller than data arrays (a few bits per 128 B
/// block), so their delay is dominated by the decoder depth, which
/// grows logarithmically: calibrated as `1 + 0.75 * log2(entries/1K)`.
///
/// # Panics
///
/// Panics if `entries` is zero.
///
/// # Example
///
/// ```
/// use cmp_latency::subarray::tag_array_cycles;
///
/// assert_eq!(tag_array_cycles(16 * 1024), 4); // private 2 MB, 8-way
/// assert_eq!(tag_array_cycles(32 * 1024), 5); // doubled NuRAPID tag
/// ```
pub fn tag_array_cycles(entries: usize) -> Cycle {
    assert!(entries > 0, "tag array must have entries");
    let kilo_entries = (entries as f64 / 1024.0).max(1.0);
    let t = 1.0 + 0.75 * kilo_entries.log2();
    (t.round() as Cycle).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_points_match_table1() {
        // Private L2 (Table 1): 2 MB tag 4, data 6.
        assert_eq!(tag_array_cycles(16 * 1024), 4);
        assert_eq!(data_array_cycles(2 * 1024 * 1024), 6);
        // CMP-NuRAPID tag with doubled tag space: 5.
        assert_eq!(tag_array_cycles(32 * 1024), 5);
        // Shared 8 MB tag, before central wire delay: 6.
        assert_eq!(tag_array_cycles(64 * 1024), 6);
    }

    #[test]
    fn data_time_is_monotonic_in_capacity() {
        let mut last = 0;
        for shift in 10..25 {
            let c = data_array_cycles(1usize << shift);
            assert!(c >= last, "capacity {} regressed", 1usize << shift);
            last = c;
        }
    }

    #[test]
    fn tag_time_is_monotonic_in_entries() {
        let mut last = 0;
        for shift in 8..22 {
            let c = tag_array_cycles(1usize << shift);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn quadrupled_tag_is_slower_than_doubled() {
        // Section 2.2.2's argument against quadrupling the tag arrays:
        // larger tags are slower (and cost 23% capacity).
        assert!(tag_array_cycles(64 * 1024) > tag_array_cycles(32 * 1024));
    }

    #[test]
    fn tiny_arrays_cost_at_least_one_cycle() {
        assert_eq!(data_array_cycles(1), 1);
        assert_eq!(tag_array_cycles(1), 1);
    }
}

//! Dynamic-energy model (extension).
//!
//! The NuRAPID line of work (Chishti et al., MICRO 2004) motivates
//! distance associativity with *energy* as much as latency: most
//! accesses touching a small nearby d-group consume far less energy
//! than accesses to a monolithic multi-megabyte array. The ISCA 2005
//! paper evaluates performance only; this module adds the natural
//! energy accounting as a documented extension so the `energy`
//! experiment binary can compare organizations.
//!
//! Energies are Cacti-flavoured estimates at 70 nm: dynamic energy of
//! an SRAM access grows roughly with the square root of capacity
//! (bitline/wordline lengths scale with the subarray side), global
//! wires cost ~1 pJ/bit/mm, and an off-chip DRAM access costs two
//! orders of magnitude more than an on-chip one. Only *relative*
//! magnitudes matter for the comparison, exactly as with Table 1's
//! latencies.

use crate::floorplan::{BUS_SPAN_MM, CENTRAL_TAG_MM, LATERAL_HOP_MM};

/// Reference dynamic energy of one 2 MB data-array access, in nJ.
const REFERENCE_DATA_NJ: f64 = 1.10;

/// Reference capacity for [`REFERENCE_DATA_NJ`].
const REFERENCE_BYTES: f64 = 2.0 * 1024.0 * 1024.0;

/// Global wire energy for one 128 B block transfer, per millimetre
/// (≈1 pJ/bit/mm × ~1 K bits).
const WIRE_NJ_PER_MM: f64 = 0.11;

/// Dynamic energy of one access to a data array of `bytes` capacity,
/// in nJ (square-root capacity scaling).
///
/// # Panics
///
/// Panics if `bytes` is zero.
///
/// # Example
///
/// ```
/// use cmp_latency::energy::data_array_nj;
///
/// let two_mb = data_array_nj(2 * 1024 * 1024);
/// let eight_mb = data_array_nj(8 * 1024 * 1024);
/// assert!((eight_mb / two_mb - 2.0).abs() < 1e-9); // sqrt(4x) = 2x
/// ```
pub fn data_array_nj(bytes: usize) -> f64 {
    assert!(bytes > 0, "data array capacity must be nonzero");
    REFERENCE_DATA_NJ * (bytes as f64 / REFERENCE_BYTES).sqrt()
}

/// Dynamic energy of one probe of a tag array with `entries` entries,
/// in nJ. Tag arrays are small; energy scales like the array but from
/// a much lower base.
pub fn tag_array_nj(entries: usize) -> f64 {
    assert!(entries > 0, "tag array must have entries");
    0.05 * (entries as f64 / 16_384.0).sqrt()
}

/// Energy of moving one block over `mm` of global wire, in nJ.
pub fn wire_nj(mm: f64) -> f64 {
    assert!(mm >= 0.0 && mm.is_finite(), "wire length must be finite and nonnegative");
    WIRE_NJ_PER_MM * mm
}

/// Per-event energies for the paper's structures, in nJ.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// One private / NuRAPID tag-array probe.
    pub private_tag: f64,
    /// One probe of the shared cache's central (4x-size) tag.
    pub shared_tag: f64,
    /// One access to a 2 MB d-group / private data array, without
    /// routing.
    pub dgroup_data: f64,
    /// Extra energy per lateral d-group routing hop.
    pub lateral_hop: f64,
    /// One access to the 8 MB shared data array including its average
    /// routing span.
    pub shared_data: f64,
    /// One SNUCA bank access (512 KB) plus its average routing.
    pub snuca_access: f64,
    /// One snoopy bus transaction (address broadcast over the full
    /// span, all tag arrays snooping).
    pub bus_tx: f64,
    /// One L1 access.
    pub l1_access: f64,
    /// One off-chip memory access (DRAM row + I/O).
    pub memory: f64,
}

impl EnergyModel {
    /// The 70 nm model used by the `energy` experiment.
    pub fn paper_70nm() -> Self {
        let dgroup = data_array_nj(2 * 1024 * 1024);
        EnergyModel {
            private_tag: tag_array_nj(16 * 1024),
            shared_tag: tag_array_nj(64 * 1024) + wire_nj(CENTRAL_TAG_MM),
            dgroup_data: dgroup,
            lateral_hop: wire_nj(LATERAL_HOP_MM),
            // The shared array's data routes on average half the
            // worst-case span.
            shared_data: data_array_nj(8 * 1024 * 1024) + wire_nj(LATERAL_HOP_MM),
            snuca_access: data_array_nj(512 * 1024) + wire_nj(BUS_SPAN_MM / 2.0),
            bus_tx: wire_nj(BUS_SPAN_MM) + 4.0 * tag_array_nj(16 * 1024),
            l1_access: data_array_nj(64 * 1024) / 4.0,
            memory: 40.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_70nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energies_scale_with_sqrt_capacity() {
        assert!(data_array_nj(8 * 1024 * 1024) > data_array_nj(2 * 1024 * 1024));
        let ratio = data_array_nj(4 * 1024 * 1024) / data_array_nj(1024 * 1024);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn model_orders_structures_sensibly() {
        let m = EnergyModel::paper_70nm();
        assert!(m.private_tag < m.shared_tag, "central 4x tag costs more");
        assert!(m.dgroup_data < m.shared_data, "2 MB d-group beats 8 MB monolith");
        assert!(m.snuca_access < m.shared_data, "small banks beat the monolith");
        assert!(m.memory > 10.0 * m.shared_data, "DRAM dominates everything on-chip");
        assert!(m.l1_access < m.private_tag * 10.0);
    }

    #[test]
    fn dgroup_with_hops_approaches_shared() {
        // A farther d-group access (2 hops) still costs less than the
        // monolithic shared array.
        let m = EnergyModel::paper_70nm();
        assert!(m.dgroup_data + 2.0 * m.lateral_hop < m.shared_data);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_capacity() {
        let _ = data_array_nj(0);
    }
}

//! CMP-SNUCA bank latencies.
//!
//! The paper's non-uniform-shared baseline is CMP-SNUCA from Beckmann
//! & Wood (MICRO 2004), itself similar to Piranha's banked cache: the
//! 8 MB shared cache is statically partitioned into small banks spread
//! across the chip, blocks are interleaved across banks, and a
//! request's latency is the routing distance from the requesting core
//! to its block's bank plus the (small) bank access time. There is no
//! replication and no migration (Section 4.2: realistic CMP-DNUCA
//! performs worse than CMP-SNUCA, so only SNUCA is evaluated).
//!
//! We model 16 × 512 KB banks in a 4 × 4 grid with the four cores at
//! the corners, the same floorplan scale as [`crate::floorplan`]. The
//! resulting latencies range from ~10 cycles (corner bank) to ~40
//! (opposite corner), averaging in the high 20s — matching the NUCA
//! paper's reported range for an 8 MB SNUCA at 70 nm and sitting, as
//! the paper requires, between the private cache (10) and the
//! uniform-shared cache (59).

use cmp_mem::{BlockAddr, CoreId, Cycle};

use crate::subarray::{data_array_cycles, tag_array_cycles};
use crate::wire::wire_cycles;

/// Fixed overhead of the banked cache's switched network: routing
/// through the per-bank switches, arbitration, and the bank
/// controller. Calibrated so the 8 MB CMP-SNUCA's average hit
/// latency lands in the mid-40s, the value implied by the paper's
/// Figure 6 (non-uniform-shared gains ~4% where the ideal 10-cycle
/// cache gains ~17%, placing SNUCA's effective latency near 47
/// cycles) and consistent with the S-NUCA latencies of Kim et al.
/// that the authors verified against.
pub const NETWORK_OVERHEAD_CYCLES: Cycle = 21;

/// Number of banks in the paper-scale SNUCA configuration.
pub const PAPER_BANKS: usize = 16;

/// Capacity of one bank in bytes (8 MB / 16).
pub const PAPER_BANK_BYTES: usize = 512 * 1024;

/// Per-(core, bank) hit latencies for a banked non-uniform shared
/// cache.
///
/// # Example
///
/// ```
/// use cmp_latency::SnucaLatencies;
/// use cmp_mem::{BlockAddr, CoreId};
///
/// let snuca = SnucaLatencies::paper(4);
/// let lat = snuca.latency(CoreId(0), snuca.bank_of(BlockAddr(17)));
/// assert!(lat >= 25 && lat <= 62);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnucaLatencies {
    /// `table[core][bank]` = hit latency in cycles.
    table: Vec<Vec<Cycle>>,
    banks: usize,
}

impl SnucaLatencies {
    /// Builds the paper-scale table: a bank grid twice the d-group
    /// floorplan in each dimension (4 cores → 16 × 512 KB banks in a
    /// 4 × 4 grid), with each core sitting at the outer corner of its
    /// own d-group's 2 × 2 bank quadrant. Bank size stays 512 KB at
    /// every machine size, so the bank count scales with the core
    /// count (8 cores → 8 × 4 banks, 64 cores → 16 × 16).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn paper(cores: usize) -> Self {
        assert!(cores > 0, "at least one core required");
        let fp = crate::Floorplan::paper(cores);
        let (cols, rows) = fp.dims();
        let (gx, gy) = (2 * cols, 2 * rows); // bank grid, 2x2 banks per d-group
        let bank_side_mm = crate::floorplan::DGROUP_SIDE_MM / 2.0; // 512 KB = quarter d-group area
        let bank_access = data_array_cycles(PAPER_BANK_BYTES)
            + tag_array_cycles(PAPER_BANK_BYTES / cmp_mem::L2_BLOCK_BYTES)
            + NETWORK_OVERHEAD_CYCLES;
        // Core c sits on the chip edge nearest its d-group: left/top
        // halves of the floorplan push the core to the quadrant's
        // outer (low) corner, right/bottom halves to the high corner.
        // At 4 cores this yields the classic four chip corners
        // (0,0) (4,0) (0,4) (4,4) in bank units.
        let corner = |pos: usize, extent: usize| -> f64 {
            if pos < extent.div_ceil(2) {
                (2 * pos) as f64
            } else {
                (2 * pos + 2) as f64
            }
        };
        let table = (0..cores)
            .map(|c| {
                let (x, y) = (c % cols, c / cols);
                let (cx, cy) = (corner(x, cols), corner(y, rows));
                (0..gx * gy)
                    .map(|b| {
                        let bx = (b % gx) as f64 + 0.5;
                        let by = (b / gx) as f64 + 0.5;
                        let dist_mm = ((cx - bx).abs() + (cy - by).abs()) * bank_side_mm;
                        bank_access + wire_cycles(dist_mm)
                    })
                    .collect()
            })
            .collect();
        SnucaLatencies { table, banks: gx * gy }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// The bank holding a block (address-interleaved).
    pub fn bank_of(&self, block: BlockAddr) -> usize {
        (block.0 as usize) % self.banks
    }

    /// Hit latency for `core` accessing `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `core` or `bank` is out of range.
    pub fn latency(&self, core: CoreId, bank: usize) -> Cycle {
        self.table[core.index()][bank]
    }

    /// Mean hit latency over all banks for `core` (uniformly
    /// interleaved blocks make this the expected hit latency).
    pub fn mean_latency(&self, core: CoreId) -> f64 {
        let row = &self.table[core.index()];
        row.iter().sum::<Cycle>() as f64 / row.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sits_between_private_and_shared() {
        let snuca = SnucaLatencies::paper(4);
        for c in 0..4u8 {
            let mean = snuca.mean_latency(CoreId(c));
            assert!(mean > 10.0, "SNUCA should be slower than private, got {mean}");
            assert!(mean < 59.0, "SNUCA should be faster than uniform-shared, got {mean}");
        }
    }

    #[test]
    fn nearest_bank_is_cheap_farthest_is_dear() {
        let snuca = SnucaLatencies::paper(4);
        let p0 = CoreId(0);
        let min = (0..snuca.banks()).map(|b| snuca.latency(p0, b)).min().unwrap();
        let max = (0..snuca.banks()).map(|b| snuca.latency(p0, b)).max().unwrap();
        assert!(min <= 35, "nearest bank too slow: {min}");
        assert!(max >= 50, "farthest bank too fast: {max}");
        assert!(max > min);
    }

    #[test]
    fn blocks_interleave_over_all_banks() {
        let snuca = SnucaLatencies::paper(4);
        let mut seen = vec![false; snuca.banks()];
        for b in 0..64u64 {
            seen[snuca.bank_of(BlockAddr(b))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn corner_symmetry() {
        let snuca = SnucaLatencies::paper(4);
        // All four corner cores see the same sorted latency profile.
        let profile = |c: u8| {
            let mut v: Vec<_> = (0..snuca.banks()).map(|b| snuca.latency(CoreId(c), b)).collect();
            v.sort_unstable();
            v
        };
        let p0 = profile(0);
        for c in 1..4 {
            assert_eq!(profile(c), p0);
        }
    }

    #[test]
    fn bank_count_scales_with_cores() {
        for (cores, banks) in [(4usize, 16usize), (8, 32), (16, 64), (64, 256)] {
            let snuca = SnucaLatencies::paper(cores);
            assert_eq!(snuca.banks(), banks, "bank count at {cores} cores");
        }
    }

    #[test]
    fn big_machine_cores_have_distinct_positions() {
        // No two cores may collapse onto the same corner (the old
        // `c % 4` corner pick stacked cores 4..N on cores 0..3).
        for cores in [8usize, 16, 64] {
            let snuca = SnucaLatencies::paper(cores);
            let profiles: Vec<Vec<Cycle>> = (0..cores).map(|c| snuca.table[c].clone()).collect();
            for a in 0..cores {
                for b in (a + 1)..cores {
                    assert_ne!(
                        profiles[a], profiles[b],
                        "cores {a} and {b} co-located at {cores} cores"
                    );
                }
            }
        }
    }

    #[test]
    fn mirror_corner_cores_match_on_big_machines() {
        // The four extreme corner cores of an 8/16/64-core machine
        // are related by mirror symmetry.
        for (cores, cols, rows) in [(8usize, 4usize, 2usize), (16, 4, 4), (64, 8, 8)] {
            let snuca = SnucaLatencies::paper(cores);
            let corners = [0, cols - 1, cols * (rows - 1), cols * rows - 1];
            let profile = |c: usize| {
                let mut v: Vec<_> =
                    (0..snuca.banks()).map(|b| snuca.latency(CoreId(c as u8), b)).collect();
                v.sort_unstable();
                v
            };
            let p0 = profile(corners[0]);
            for &c in &corners[1..] {
                assert_eq!(profile(c), p0, "corner core {c} differs at {cores} cores");
            }
        }
    }
}

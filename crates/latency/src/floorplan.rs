//! Chip floorplan: d-group placement and routing distances.
//!
//! Figure 1 of the paper arranges the four 2 MB d-groups in a 2 × 2
//! grid with one core at each corner, adjacent to "its" d-group. A
//! request from core P to d-group *g* routes around any closer
//! d-groups (the Cacti modification described in Section 4.2), so its
//! wire length is the Manhattan hop count between the two grid slots
//! times one d-group pitch.
//!
//! At 70 nm a 2 MB SRAM macro occupies roughly 12 mm², i.e. a
//! ~3.47 mm side. One lateral hop (routing around a neighbouring
//! d-group to its access port) is 1.5 sides ≈ 5.2 mm; the diagonal
//! d-group is two lateral hops ≈ 10.4 mm. The shared cache's central
//! tag sits in the middle of the array, ~7.7 mm from a corner core,
//! and the snooping bus must span the farthest tag array, ~12.3 mm.
//! With the 2.6 cycles/mm wire model these distances reproduce
//! Table 1 exactly (see [`crate::table1`]).

use cmp_mem::CoreId;

/// Side of one 2 MB d-group macro at 70 nm, in millimetres.
pub const DGROUP_SIDE_MM: f64 = 3.4667;

/// Wire length of one lateral d-group hop, in millimetres.
pub const LATERAL_HOP_MM: f64 = 1.5 * DGROUP_SIDE_MM;

/// Wire length from a corner core to the centrally placed shared tag.
pub const CENTRAL_TAG_MM: f64 = 2.22 * DGROUP_SIDE_MM;

/// Wire length of the bus: the span a core needs to reach the farthest
/// private tag array (Section 4.2's bus latency definition).
pub const BUS_SPAN_MM: f64 = 3.55 * DGROUP_SIDE_MM;

/// Placement of d-groups (one per core) on a near-square grid, with
/// each core abutting its own d-group.
///
/// # Example
///
/// ```
/// use cmp_latency::Floorplan;
/// use cmp_mem::CoreId;
///
/// let fp = Floorplan::paper(4);
/// assert_eq!(fp.dgroup_distance_rank(CoreId(0), 0), 0); // own
/// assert_eq!(fp.dgroup_distance_rank(CoreId(0), 1), 1); // lateral
/// assert_eq!(fp.dgroup_distance_rank(CoreId(0), 3), 2); // diagonal
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Floorplan {
    cols: usize,
    dgroups: usize,
}

impl Floorplan {
    /// The paper's floorplan for `cores` cores (one d-group per core;
    /// 4 cores gives the 2 × 2 layout of Figure 1).
    ///
    /// Power-of-two core counts get a hole-free rectangle whose
    /// aspect ratio is at most 2:1 — 2 → 2×1, 4 → 2×2, 8 → 4×2,
    /// 16 → 4×4, 32 → 8×4, 64 → 8×8 — so every grid slot holds a
    /// d-group and Manhattan ranks stay symmetric across mirrored
    /// cores. Other counts fall back to a ceil(√n)-wide near-square
    /// whose last row may be partially filled (positions stay
    /// distinct, so ranks remain well defined, just not symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn paper(cores: usize) -> Self {
        assert!(cores > 0, "at least one core required");
        let cols = if cores.is_power_of_two() {
            // 2^ceil(log2(n)/2): the wider side of the 2:1-or-square
            // rectangle. usize::BITS - 1 - lz == log2 for powers of 2.
            let log2 = (usize::BITS - 1 - cores.leading_zeros()) as usize;
            1usize << log2.div_ceil(2)
        } else {
            (cores as f64).sqrt().ceil() as usize
        };
        Floorplan { cols, dgroups: cores }
    }

    /// Number of d-groups in the floorplan.
    pub fn dgroups(&self) -> usize {
        self.dgroups
    }

    /// Grid dimensions as `(cols, rows)`; the last row may be
    /// partially filled for non-power-of-two d-group counts.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.dgroups.div_ceil(self.cols))
    }

    /// Grid position of d-group `g`.
    fn position(&self, g: usize) -> (usize, usize) {
        (g % self.cols, g / self.cols)
    }

    /// Manhattan hop count from `core`'s own d-group slot to d-group
    /// `g` (0 = own, 1 = lateral neighbour, 2 = diagonal, ...).
    ///
    /// # Panics
    ///
    /// Panics if `core` or `g` is out of range.
    pub fn dgroup_distance_rank(&self, core: CoreId, g: usize) -> usize {
        assert!(core.index() < self.dgroups && g < self.dgroups, "core/d-group out of range");
        let (x0, y0) = self.position(core.index());
        let (x1, y1) = self.position(g);
        x0.abs_diff(x1) + y0.abs_diff(y1)
    }

    /// Wire length in millimetres from `core` to d-group `g`.
    pub fn dgroup_distance_mm(&self, core: CoreId, g: usize) -> f64 {
        self.dgroup_distance_rank(core, g) as f64 * LATERAL_HOP_MM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_core_grid_matches_figure1() {
        let fp = Floorplan::paper(4);
        // P0 abuts d-group a; b and c are equidistant laterals; d is
        // the diagonal (Figure 1's geometry).
        assert_eq!(fp.dgroup_distance_rank(CoreId(0), 0), 0);
        assert_eq!(fp.dgroup_distance_rank(CoreId(0), 1), 1);
        assert_eq!(fp.dgroup_distance_rank(CoreId(0), 2), 1);
        assert_eq!(fp.dgroup_distance_rank(CoreId(0), 3), 2);
    }

    #[test]
    fn distances_are_symmetric_across_cores() {
        let fp = Floorplan::paper(4);
        for c in 0..4u8 {
            let mut ranks: Vec<_> = (0..4).map(|g| fp.dgroup_distance_rank(CoreId(c), g)).collect();
            ranks.sort_unstable();
            assert_eq!(ranks, vec![0, 1, 1, 2]);
        }
    }

    #[test]
    fn own_dgroup_is_closest() {
        for n in [1usize, 2, 4, 8, 9, 16] {
            let fp = Floorplan::paper(n);
            for c in 0..n {
                assert_eq!(fp.dgroup_distance_rank(CoreId(c as u8), c), 0);
            }
        }
    }

    #[test]
    fn distance_mm_scales_with_rank() {
        let fp = Floorplan::paper(4);
        assert_eq!(fp.dgroup_distance_mm(CoreId(0), 0), 0.0);
        let lat = fp.dgroup_distance_mm(CoreId(0), 1);
        let diag = fp.dgroup_distance_mm(CoreId(0), 3);
        assert!((diag - 2.0 * lat).abs() < 1e-9);
    }

    #[test]
    fn eight_core_floorplan_has_wider_spread() {
        let fp = Floorplan::paper(8);
        let max_rank = (0..8).map(|g| fp.dgroup_distance_rank(CoreId(0), g)).max().unwrap();
        assert!(max_rank >= 3);
    }

    #[test]
    fn power_of_two_grids_are_hole_free_rectangles() {
        for (n, dims) in [
            (1, (1, 1)),
            (2, (2, 1)),
            (4, (2, 2)),
            (8, (4, 2)),
            (16, (4, 4)),
            (32, (8, 4)),
            (64, (8, 8)),
        ] {
            let fp = Floorplan::paper(n);
            assert_eq!(fp.dims(), dims, "dims for {n} cores");
            let (cols, rows) = fp.dims();
            assert_eq!(cols * rows, n, "{n}-core grid must have no holes");
        }
    }

    #[test]
    fn ranks_are_symmetric_pairwise() {
        for n in [2usize, 4, 8, 16, 64] {
            let fp = Floorplan::paper(n);
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(
                        fp.dgroup_distance_rank(CoreId(a as u8), b),
                        fp.dgroup_distance_rank(CoreId(b as u8), a),
                        "rank({a},{b}) asymmetric at {n} cores"
                    );
                }
            }
        }
    }

    #[test]
    fn corner_cores_see_identical_sorted_rank_profiles() {
        // The four grid corners are related by mirror symmetry, so
        // their sorted distance profiles must agree at every
        // power-of-two machine size.
        for n in [4usize, 8, 16, 64] {
            let fp = Floorplan::paper(n);
            let (cols, rows) = fp.dims();
            let corners = [0, cols - 1, cols * (rows - 1), cols * rows - 1];
            let profile = |c: usize| {
                let mut v: Vec<_> =
                    (0..n).map(|g| fp.dgroup_distance_rank(CoreId(c as u8), g)).collect();
                v.sort_unstable();
                v
            };
            let p0 = profile(corners[0]);
            for &c in &corners[1..] {
                assert_eq!(profile(c), p0, "corner {c} differs at {n} cores");
            }
        }
    }
}

#![warn(missing_docs)]

//! Umbrella crate for the CMP-NuRAPID reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can use a single dependency.

pub use cmp_audit as audit;
pub use cmp_cache as cache;
pub use cmp_coherence as coherence;
pub use cmp_latency as latency;
pub use cmp_mem as mem;
pub use cmp_nurapid as nurapid;
pub use cmp_sim as sim;
pub use cmp_trace as trace;

//! Cross-crate integration tests: the whole stack (workload → system
//! → organizations) at small scale, asserting the directional claims
//! that hold at any scale.

use nurapid_suite::cache::{AccessClass, CacheOrg};
use nurapid_suite::coherence::Bus;
use nurapid_suite::mem::{AccessKind, BlockAddr, CoreId};
use nurapid_suite::nurapid::{CmpNurapid, NurapidConfig};
use nurapid_suite::sim::{run_mix, run_multithreaded, OrgKind, RunConfig};

fn quick() -> RunConfig {
    RunConfig::sized(15_000, 30_000, 0xE2E)
}

#[test]
fn ideal_always_beats_uniform_shared() {
    for wl in ["oltp", "barnes"] {
        let shared = run_multithreaded(wl, OrgKind::Shared, &quick());
        let ideal = run_multithreaded(wl, OrgKind::Ideal, &quick());
        assert!(
            ideal.ipc() > shared.ipc(),
            "{wl}: ideal {} vs shared {}",
            ideal.ipc(),
            shared.ipc()
        );
        // Same capacity, same contents policy: miss counts agree to
        // within the run-until-any measurement jitter.
        let (a, b) = (ideal.l2.misses() as f64, shared.l2.misses() as f64);
        assert!((a - b).abs() / b < 0.02, "ideal {a} vs shared {b} misses");
    }
}

#[test]
fn shared_cache_has_no_coherence_misses() {
    let r = run_multithreaded("oltp", OrgKind::Shared, &quick());
    assert_eq!(r.l2.miss_ros, 0);
    assert_eq!(r.l2.miss_rws, 0);
    assert!(r.l2.miss_capacity > 0);
}

#[test]
fn private_caches_see_sharing_misses_on_commercial_workloads() {
    let r = run_multithreaded("oltp", OrgKind::Private, &quick());
    assert!(r.l2.miss_ros > 0, "OLTP must produce read-only-sharing misses");
    assert!(r.l2.miss_rws > 0, "OLTP must produce read-write-sharing misses");
}

#[test]
fn isc_cuts_rws_misses_versus_private() {
    let cfg = RunConfig::sized(40_000, 80_000, 0xE2E);
    let private = run_multithreaded("oltp", OrgKind::Private, &cfg);
    let nurapid = run_multithreaded("oltp", OrgKind::Nurapid, &cfg);
    let p = private.l2.class_fraction(AccessClass::MissRws).value();
    let n = nurapid.l2.class_fraction(AccessClass::MissRws).value();
    // At this (cold, small) scale the cut is partial; the paper-scale
    // harness shows ~80% (see EXPERIMENTS.md).
    assert!(n < p * 0.8, "ISC should clearly cut RWS misses: private {p:.4} vs nurapid {n:.4}");
}

#[test]
fn cr_performs_pointer_transfers_on_sharing_workloads() {
    let r = run_multithreaded("apache", OrgKind::Nurapid, &quick());
    assert!(r.l2.pointer_transfers > 0, "CR must take tag-only copies");
}

#[test]
fn multiprogrammed_mixes_have_no_sharing() {
    let r = run_mix("MIX2", OrgKind::Private, &quick());
    assert_eq!(r.l2.miss_ros, 0);
    assert_eq!(r.l2.miss_rws, 0);
}

#[test]
fn nurapid_steals_capacity_on_mixes() {
    // Paper-scale d-groups take millions of references to fill, so
    // drive a tiny-d-group CMP-NuRAPID directly with MIX3's reference
    // stream: mcf's multi-MB footprint must overflow its d-group and
    // demote into the neighbours'.
    use nurapid_suite::trace::{MixWorkload, TraceSource};
    let mut workload = MixWorkload::table2("MIX3", 0xE2E).expect("table 2 mix");
    let mut l2 = CmpNurapid::new(NurapidConfig::tiny(4, 32 * 128));
    let mut bus = Bus::paper();
    let mut now = 0;
    let mut inv = nurapid_suite::cache::InvalScratch::new();
    for i in 0..40_000u64 {
        now += 100;
        let a = workload.next_access(CoreId((i % 4) as u8));
        l2.access(CoreId((i % 4) as u8), a.addr.block(128), a.kind, now, &mut bus, &mut inv);
    }
    l2.check_invariants();
    assert!(l2.stats().demotions > 0, "asymmetric mixes must trigger demotions");
    // The overflowing cores own frames outside their closest d-group.
    let by_owner = l2.occupancy_by_owner();
    let stolen: usize =
        (0..4).map(|g| (0..4).filter(|c| *c != g).map(|c| by_owner[g][c]).sum::<usize>()).sum();
    assert!(stolen > 0, "some frames must be owned across d-groups: {by_owner:?}");
}

#[test]
fn whole_system_runs_are_deterministic() {
    let a = run_multithreaded("specjbb", OrgKind::Nurapid, &quick());
    let b = run_multithreaded("specjbb", OrgKind::Nurapid, &quick());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.l2.hits(), b.l2.hits());
    assert_eq!(a.l2.misses(), b.l2.misses());
}

#[test]
fn figure3_walkthrough_through_public_api() {
    // The crate-level example of the paper's Figure 3, via the
    // umbrella crate's re-exports.
    let mut l2 = CmpNurapid::new(NurapidConfig::paper());
    let mut bus = Bus::paper();
    let mut inv = nurapid_suite::cache::InvalScratch::new();
    l2.access(CoreId(0), BlockAddr(7), AccessKind::Read, 0, &mut bus, &mut inv);
    l2.access(CoreId(1), BlockAddr(7), AccessKind::Read, 1_000, &mut bus, &mut inv);
    assert_eq!(l2.data_copies(BlockAddr(7)), 1, "first use: tag-only copy");
    l2.access(CoreId(1), BlockAddr(7), AccessKind::Read, 2_000, &mut bus, &mut inv);
    assert_eq!(l2.data_copies(BlockAddr(7)), 2, "second use: replicate");
    l2.check_invariants();
}

#[test]
fn all_organizations_agree_on_workload_accesses() {
    // Same workload seed => the organizations see the same reference
    // stream; total measured references must match.
    let counts: Vec<u64> = [OrgKind::Shared, OrgKind::Private, OrgKind::Nurapid]
        .iter()
        .map(|k| run_multithreaded("barnes", *k, &quick()).accesses)
        .collect();
    // run-until-any semantics: totals are close but need not be
    // identical (faster orgs complete slightly different interleaves).
    for c in &counts {
        let lo = counts[0] as f64 * 0.9;
        let hi = counts[0] as f64 * 1.1;
        assert!((*c as f64) > lo && (*c as f64) < hi, "{counts:?}");
    }
}

//! Property-based tests: the core data structures checked against
//! simple reference models under random operation sequences.

use proptest::prelude::*;

use nurapid_suite::cache::{lru::LruOrder, CacheOrg, TagArray};
use nurapid_suite::coherence::{mesic, Bus, BusTx};
use nurapid_suite::mem::{AccessKind, Addr, BlockAddr, CacheGeometry, CoreId, Rng, Zipf};
use nurapid_suite::nurapid::{CmpNurapid, DGroupId, DataArray, NurapidConfig, TagRef};

// ---- LRU vs a Vec-based reference model -----------------------------------

proptest! {
    #[test]
    fn lru_matches_reference_model(ops in proptest::collection::vec(0usize..4, 1..200)) {
        let mut lru = LruOrder::new(4);
        let mut model: Vec<usize> = (0..4).collect(); // front = LRU
        for way in ops {
            lru.touch(way);
            model.retain(|w| *w != way);
            model.push(way);
            prop_assert_eq!(lru.least_recent(), model[0]);
            prop_assert_eq!(lru.most_recent(), *model.last().expect("nonempty"));
            let order: Vec<usize> = lru.iter().collect();
            prop_assert_eq!(&order, &model);
        }
    }
}

// ---- TagArray vs a HashMap reference model --------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn tag_array_matches_reference(blocks in proptest::collection::vec(0u64..64, 1..300)) {
        // 4 sets x 2 ways.
        let mut tags: TagArray<u64> = TagArray::new(CacheGeometry::new(512, 64, 2));
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for (i, raw) in blocks.iter().enumerate() {
            let b = BlockAddr(*raw);
            let set = tags.set_of(b);
            match tags.lookup(b) {
                Some(way) => {
                    prop_assert!(resident.contains(raw));
                    tags.touch(set, way);
                }
                None => {
                    prop_assert!(!resident.contains(raw));
                    let way = tags.victim_by(set, |e| u32::from(e.is_some()));
                    if let Some((victim, _)) = tags.evict(set, way) {
                        prop_assert!(resident.remove(&victim.0));
                    }
                    tags.fill(set, way, b, i as u64);
                    resident.insert(*raw);
                }
            }
            prop_assert_eq!(tags.len(), resident.len());
        }
        // Every resident block is still findable.
        for raw in &resident {
            prop_assert!(tags.lookup(BlockAddr(*raw)).is_some());
        }
    }
}

// ---- Geometry roundtrips ----------------------------------------------------

proptest! {
    #[test]
    fn geometry_tag_set_roundtrip(
        raw in 0u64..1_000_000_000,
        cap_shift in 10u32..23,
        block_shift in 5u32..8,
        assoc_shift in 0u32..4,
    ) {
        let capacity = 1usize << cap_shift;
        let block = 1usize << block_shift;
        let assoc = 1usize << assoc_shift;
        prop_assume!(capacity >= block * assoc);
        let g = CacheGeometry::new(capacity, block, assoc);
        let b = BlockAddr(raw);
        prop_assert_eq!(g.block_of(g.tag_of(b), g.set_of(b)), b);
        prop_assert!(g.set_of(b) < g.num_sets());
    }

    #[test]
    fn block_addr_parent_child_roundtrip(raw in 0u64..1_000_000) {
        let l2 = BlockAddr(raw);
        let children: Vec<BlockAddr> = l2.children(128, 64).collect();
        prop_assert_eq!(children.len(), 2);
        for child in children {
            prop_assert_eq!(child.parent(64, 128), l2);
        }
        let a = Addr(raw * 128 + raw % 128);
        prop_assert_eq!(a.block(128), l2);
    }
}

// ---- Zipf sampler stays in range and is deterministic -----------------------

proptest! {
    #[test]
    fn zipf_sampler_bounds(n in 1usize..5_000, theta in 0.0f64..1.5, seed in any::<u64>()) {
        let zipf = Zipf::new(n, theta);
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..50 {
            let x = zipf.sample(&mut a);
            prop_assert!(x < n);
            prop_assert_eq!(x, zipf.sample(&mut b));
        }
    }
}

// ---- MESIC protocol invariants under random stimuli --------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn mesic_transitions_preserve_validity(
        ops in proptest::collection::vec((0usize..4, any::<bool>()), 1..150)
    ) {
        use mesic::MesicState;
        let mut states = [MesicState::Invalid; 4];
        for (agent, is_write) in ops {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let mut sig = nurapid_suite::coherence::SnoopSignals::NONE;
            for (i, s) in states.iter().enumerate() {
                if i != agent && s.is_valid() {
                    sig.shared = true;
                    if s.is_dirty() {
                        sig.dirty = true;
                    }
                }
            }
            let action = mesic::processor_access(states[agent], kind, sig);
            if let Some(tx) = action.bus {
                for (i, state) in states.iter_mut().enumerate() {
                    if i != agent {
                        *state = mesic::snoop(*state, tx).0;
                    }
                }
            }
            states[agent] = action.next;
            // Invariants: single exclusive owner; C never mixes with
            // clean sharers.
            let m = states.iter().filter(|s| matches!(s, MesicState::Modified)).count();
            let e = states.iter().filter(|s| matches!(s, MesicState::Exclusive)).count();
            let c = states.iter().filter(|s| matches!(s, MesicState::Communication)).count();
            let sh = states.iter().filter(|s| matches!(s, MesicState::Shared)).count();
            let valid = states.iter().filter(|s| s.is_valid()).count();
            prop_assert!(m <= 1 && e <= 1);
            if m + e == 1 {
                prop_assert_eq!(valid, 1);
            }
            if c > 0 {
                prop_assert_eq!(m + e + sh, 0);
            }
        }
    }
}

// ---- DataArray alloc/free against a set model --------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn data_array_alloc_free_model(ops in proptest::collection::vec(any::<bool>(), 1..300)) {
        let mut data = DataArray::new(2, 16);
        let owner = TagRef { core: CoreId(0), set: 0, way: 0 };
        let mut live: Vec<nurapid_suite::nurapid::FrameRef> = Vec::new();
        let mut next_block = 0u64;
        for do_alloc in ops {
            if do_alloc && live.len() < 16 {
                next_block += 1;
                let f = data.alloc(DGroupId(0), BlockAddr(next_block), owner);
                prop_assert!(data.is_occupied(f));
                live.push(f);
            } else if let Some(f) = live.pop() {
                let contents = data.free(f);
                prop_assert_eq!(contents.owner, owner);
                prop_assert!(!data.is_occupied(f));
            }
            prop_assert_eq!(data.occupied(DGroupId(0)), live.len());
            prop_assert_eq!(data.has_free(DGroupId(0)), live.len() < 16);
        }
    }
}

// ---- CMP-NuRAPID invariants under random access sequences --------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn nurapid_invariants_hold_under_random_traffic(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..4, 0u64..48, any::<bool>()), 20..250)
    ) {
        let mut cfg = NurapidConfig::tiny(4, 8 * 128);
        cfg.seed = seed;
        let mut l2 = CmpNurapid::new(cfg);
        let mut bus = Bus::paper();
        let mut now = 0u64;
        let mut inv = nurapid_suite::cache::InvalScratch::new();
        for (core, block, is_write) in ops {
            now += 500;
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let resp = l2.access(CoreId(core), BlockAddr(block), kind, now, &mut bus, &mut inv);
            prop_assert!(resp.latency >= 1);
        }
        l2.check_invariants();
        // BusRepl accounting is consistent: every BusRepl on the bus
        // had at least one cause (a shared-block eviction).
        let s = l2.stats();
        prop_assert!(bus.stats().count(BusTx::BusRepl) >= s.evictions_shared);
    }
}

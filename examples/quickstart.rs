//! Quickstart: simulate OLTP on CMP-NuRAPID and the two conventional
//! designs, and print the headline comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nurapid_suite::sim::{run_multithreaded, OrgKind, RunConfig};

fn main() {
    // A short run: 100 K warm-up + 200 K measured references per core.
    // Use `RunConfig::paper()` for the paper-scale numbers.
    let cfg = RunConfig::sized(100_000, 200_000, 42);

    println!("Simulating OLTP on a 4-core CMP with an 8 MB L2 ...\n");
    let shared = run_multithreaded("oltp", OrgKind::Shared, &cfg);
    println!(
        "{:<22} IPC {:.3}   hits {:>5.1}%  misses {:>5.1}%",
        "uniform-shared",
        shared.ipc(),
        shared.l2.hit_fraction().value() * 100.0,
        shared.l2.miss_fraction().value() * 100.0,
    );

    for kind in [OrgKind::Private, OrgKind::Nurapid] {
        let r = run_multithreaded("oltp", kind, &cfg);
        println!(
            "{:<22} IPC {:.3}   hits {:>5.1}%  misses {:>5.1}%   ({:+.1}% vs shared)",
            kind.label(),
            r.ipc(),
            r.l2.hit_fraction().value() * 100.0,
            r.l2.miss_fraction().value() * 100.0,
            (r.ipc() / shared.ipc() - 1.0) * 100.0,
        );
    }

    println!(
        "\nCMP-NuRAPID combines the shared cache's capacity with the private\n\
         caches' latency: controlled replication avoids duplicate copies of\n\
         read-shared data, in-situ communication removes read-write-sharing\n\
         coherence misses, and capacity stealing places overflow in\n\
         neighbouring d-groups. Run `cargo run --release -p cmp-bench --bin all`\n\
         to regenerate every table and figure of the paper."
    );
}

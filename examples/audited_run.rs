//! Audited execution: run a workload with shadow-model checking and
//! structural audits, inject a fault to see the harness catch it,
//! then replay the violation from its one-line artifact.
//!
//! ```text
//! cargo run --release --example audited_run
//! ```

use nurapid_suite::audit::{AuditConfig, FaultKind, FaultSpec};
use nurapid_suite::sim::{run_replay, run_workload_audited, OrgKind, RunConfig};

fn main() {
    let cfg = RunConfig::sized(20_000, 40_000, 0x15CA);

    // 1. A clean audited run: every L2 access is checked against the
    //    shadow functional model, and the organization's structural
    //    audit (pointer/coherence integrity) runs every 1024 accesses.
    let clean = run_workload_audited("oltp", OrgKind::Nurapid, &cfg, AuditConfig::checking(1_024))
        .expect("known workload");
    println!(
        "clean run:   {} L2 accesses, {} violations, IPC {:.3}",
        clean.result.l2.accesses(),
        clean.violations.len(),
        clean.result.ipc(),
    );
    assert!(clean.clean(), "a healthy machine must audit clean");

    // 2. Corrupt a forward pointer mid-run (the fault index counts L2
    //    accesses). The structural audit catches it within a cadence.
    let audit =
        AuditConfig::checking(256).with_fault(FaultSpec::new(FaultKind::TagCorruption, 500));
    let faulted =
        run_workload_audited("oltp", OrgKind::Nurapid, &cfg, audit).expect("known workload");
    for (at, desc) in faulted.injections.snapshot() {
        println!("injected:    at access #{at}: {desc}");
    }
    let v = faulted.violations.first().expect("the audit must catch the fault");
    println!("detected:    {v}");

    // 3. The run serializes into a one-line replay artifact. Parse it
    //    back (as a bug report reader would) and re-execute: the same
    //    violation fires at the same access index.
    let artifact = faulted.artifact.expect("violations produce artifacts");
    println!("artifact:    {artifact}");
    let replay = run_replay(&artifact.to_string().parse().expect("artifact parses"))
        .expect("artifact names a known run");
    println!(
        "replayed:    reproduced = {} ({})",
        replay.reproduced,
        replay.violation.map(|v| v.check).unwrap_or_default(),
    );
    assert!(replay.reproduced, "the simulator is deterministic");
}

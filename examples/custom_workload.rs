//! Bringing your own workload: implement [`TraceSource`] and run it
//! through the full system against any cache organization.
//!
//! The example models a 4-stage software pipeline: each core reads a
//! queue written by its left neighbour and writes a queue read by its
//! right neighbour — pure neighbour read-write sharing, the pattern
//! in-situ communication was designed for.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use nurapid_suite::mem::{AccessKind, Addr, CoreId, Rng};
use nurapid_suite::sim::{build_org, OrgKind, System};
use nurapid_suite::trace::{Access, TraceSource};

/// Ring-pipeline workload: core i writes queue i and reads queue i-1,
/// with a private scratch region in between.
struct RingPipeline {
    cores: usize,
    queue_blocks: u64,
    scratch_blocks: u64,
    rngs: Vec<Rng>,
}

impl RingPipeline {
    fn new(cores: usize, seed: u64) -> Self {
        let mut root = Rng::new(seed);
        RingPipeline {
            cores,
            queue_blocks: 64,
            scratch_blocks: 4_096,
            rngs: (0..cores).map(|_| root.fork()).collect(),
        }
    }

    fn queue_addr(&self, queue: usize, slot: u64) -> Addr {
        Addr(0x6000_0000_0000 + ((queue as u64) << 32) + slot * 128)
    }

    fn scratch_addr(&self, core: usize, block: u64) -> Addr {
        Addr(0x7000_0000_0000 + ((core as u64) << 32) + block * 128)
    }
}

impl TraceSource for RingPipeline {
    fn next_access(&mut self, core: CoreId) -> Access {
        let c = core.index();
        let rng = &mut self.rngs[c];
        let gap = rng.gen_range(9) as u32;
        let roll = rng.gen_f64();
        if roll < 0.30 {
            // Consume from the left neighbour's queue.
            let left = (c + self.cores - 1) % self.cores;
            let slot = rng.gen_range(self.queue_blocks);
            Access { addr: self.queue_addr(left, slot), kind: AccessKind::Read, gap }
        } else if roll < 0.45 {
            // Produce into this core's queue.
            let slot = rng.gen_range(self.queue_blocks);
            Access { addr: self.queue_addr(c, slot), kind: AccessKind::Write, gap }
        } else {
            // Private scratch work.
            let block = rng.gen_range(self.scratch_blocks);
            let kind = if rng.gen_bool(0.3) { AccessKind::Write } else { AccessKind::Read };
            Access { addr: self.scratch_addr(c, block), kind, gap }
        }
    }

    fn name(&self) -> &str {
        "ring-pipeline"
    }

    fn cores(&self) -> usize {
        self.cores
    }
}

fn main() {
    println!("Custom workload: 4-stage ring pipeline (neighbour read-write sharing)\n");
    let mut base_ipc = 0.0;
    for kind in [OrgKind::Shared, OrgKind::Private, OrgKind::Snuca, OrgKind::Nurapid] {
        let mut sys = System::new(RingPipeline::new(4, 0xB0B), build_org(kind));
        let r = sys.run_measured(150_000, 300_000);
        if kind == OrgKind::Shared {
            base_ipc = r.ipc();
        }
        println!(
            "{:<20} IPC {:.3}  ({:+5.1}% vs shared)   RWS misses {:>5.2}%  L2 misses {:>5.2}%  stall/L2acc {:>5.1}",
            kind.label(),
            r.ipc(),
            (r.ipc() / base_ipc - 1.0) * 100.0,
            r.l2.class_fraction(nurapid_suite::cache::AccessClass::MissRws).value() * 100.0,
            r.l2.miss_fraction().value() * 100.0,
            r.l2_stall_cycles as f64 / r.l2.accesses().max(1) as f64,
        );
    }
    println!(
        "\nThe private caches ping-pong every queue block between producer and\n\
         consumer; CMP-NuRAPID's C state pins one copy near the consumer and\n\
         the producer writes it in place."
    );
}

//! A move-by-move walkthrough of controlled replication (paper
//! Figure 3) and in-situ communication (Section 3.2), at the level of
//! individual cache accesses.
//!
//! ```text
//! cargo run --release --example in_situ_communication
//! ```

use nurapid_suite::cache::{CacheOrg, InvalScratch};
use nurapid_suite::coherence::Bus;
use nurapid_suite::mem::{AccessKind, BlockAddr, CoreId};
use nurapid_suite::nurapid::{CmpNurapid, NurapidConfig};

fn main() {
    let mut l2 = CmpNurapid::new(NurapidConfig::paper());
    let mut bus = Bus::paper();
    let mut now = 0u64;
    let mut inv = InvalScratch::new();
    let mut go = |l2: &mut CmpNurapid, bus: &mut Bus, core: u8, block: u64, kind, what: &str| {
        now += 1_000;
        let r = l2.access(CoreId(core), BlockAddr(block), kind, now, bus, &mut inv);
        println!(
            "  P{core} {kind:?} block {block:#x}: {what}\n    -> {:?}, {} cycles, state now {:?}, copy in d-group {:?}",
            r.class,
            r.latency,
            l2.state_of(CoreId(core), BlockAddr(block)),
            l2.dgroup_of(CoreId(core), BlockAddr(block)).map(|g| (b'a' + g.0) as char),
        );
    };

    println!("== Controlled replication (Figure 3) ==");
    let x = 0x7000;
    go(&mut l2, &mut bus, 0, x, AccessKind::Read, "P0 brings X on chip (Figure 3a)");
    go(&mut l2, &mut bus, 1, x, AccessKind::Read, "P1 gets a tag-only pointer to P0's copy (3b)");
    println!("    data copies of X on chip: {}", l2.data_copies(BlockAddr(x)));
    go(&mut l2, &mut bus, 1, x, AccessKind::Read, "P1's second use replicates into d-group b (3c)");
    println!("    data copies of X on chip: {}", l2.data_copies(BlockAddr(x)));
    go(&mut l2, &mut bus, 1, x, AccessKind::Read, "P1 now enjoys closest-d-group latency");

    println!("\n== In-situ communication (Section 3.2) ==");
    let y = 0x9000;
    go(&mut l2, &mut bus, 0, y, AccessKind::Write, "P0 produces Y (Modified)");
    go(&mut l2, &mut bus, 1, y, AccessKind::Read, "P1 reads: both enter C, copy relocates to P1");
    go(&mut l2, &mut bus, 0, y, AccessKind::Write, "P0 writes Y *in place* - no coherence miss");
    go(&mut l2, &mut bus, 1, y, AccessKind::Read, "P1 reads again at closest-d-group latency");
    go(&mut l2, &mut bus, 0, y, AccessKind::Write, "the ping-pong continues without misses");
    go(&mut l2, &mut bus, 1, y, AccessKind::Read, "...");
    println!(
        "    data copies of Y on chip: {} (one copy, shared by writer and reader)",
        l2.data_copies(BlockAddr(y))
    );

    let s = l2.stats();
    println!(
        "\nTotals: {} pointer transfers (CR), {} replications, RWS misses {}",
        s.pointer_transfers, s.replications, s.miss_rws
    );
    println!(
        "Under MESI private caches the write/read ping-pong above would take a\n\
         coherence miss (~340 cycles) on every round trip; in the C state both\n\
         cores hit in the cache."
    );
}

//! Capacity stealing on an asymmetric multiprogrammed mix: cores
//! running working sets larger than their private share spill into
//! the d-groups of cores running tiny ones. The demotion policies
//! place the overflow in the neighbours' unused frames.
//!
//! ```text
//! cargo run --release --example capacity_stealing
//! ```

use nurapid_suite::cache::{CacheOrg, InvalScratch};
use nurapid_suite::mem::CoreId;
use nurapid_suite::nurapid::{CmpNurapid, NurapidConfig};
use nurapid_suite::sim::{run_mix, OrgKind, RunConfig};
use nurapid_suite::trace::{MixWorkload, TraceSource};

fn main() {
    let cfg = RunConfig::sized(400_000, 600_000, 9);

    // MIX3 pairs apsi and mcf (multi-MB footprints) with gzip and mesa
    // (far under their 2 MB shares) - Table 2's asymmetric case.
    println!("Running MIX3 (apsi, mcf, gzip, mesa) ...\n");
    let shared = run_mix("MIX3", OrgKind::Shared, &cfg);
    let private = run_mix("MIX3", OrgKind::Private, &cfg);
    let nurapid = run_mix("MIX3", OrgKind::Nurapid, &cfg);

    println!("relative performance vs uniform-shared:");
    println!("  private      {:+.1}%", (private.ipc() / shared.ipc() - 1.0) * 100.0);
    println!("  CMP-NuRAPID  {:+.1}%", (nurapid.ipc() / shared.ipc() - 1.0) * 100.0);
    println!(
        "\nmiss rates: shared {:.1}%  private {:.1}%  CMP-NuRAPID {:.1}%",
        shared.l2.miss_fraction().value() * 100.0,
        private.l2.miss_fraction().value() * 100.0,
        nurapid.l2.miss_fraction().value() * 100.0,
    );
    println!("demotions during measurement (capacity-stealing events): {}", nurapid.l2.demotions);

    // Where does the data end up? Drive the cache directly (with a
    // small recent-blocks filter standing in for the L1) and read the
    // ownership map afterwards.
    let mut workload = MixWorkload::table2("MIX3", cfg.seed).expect("table 2 mix");
    let names: Vec<&str> = (0..4).map(|c| workload.app(CoreId(c)).name).collect();
    let mut l2 = CmpNurapid::new(NurapidConfig::paper());
    let mut bus = nurapid_suite::coherence::Bus::paper();
    let mut clocks = [0u64; 4];
    let mut inv = InvalScratch::new();
    let mut recent: Vec<std::collections::HashSet<u64>> = vec![Default::default(); 4];
    for _ in 0..1_500_000u32 {
        let i = (0..4).min_by_key(|&i| clocks[i]).expect("four cores");
        let a = workload.next_access(CoreId(i as u8));
        clocks[i] += a.gap as u64 + 3;
        let l2_block = a.addr.block(128);
        if recent[i].len() > 512 {
            recent[i].clear();
        }
        if recent[i].insert(l2_block.0) || a.kind.is_write() {
            let r = l2.access(CoreId(i as u8), l2_block, a.kind, clocks[i], &mut bus, &mut inv);
            clocks[i] += r.latency;
        }
    }

    println!("\nframes owned per (d-group, core):");
    println!("             {:>8} {:>8} {:>8} {:>8}", names[0], names[1], names[2], names[3]);
    for (g, row) in l2.occupancy_by_owner().iter().enumerate() {
        println!(
            "  d-group {}: {:>8} {:>8} {:>8} {:>8}",
            (b'a' + g as u8) as char,
            row[0],
            row[1],
            row[2],
            row[3]
        );
    }
    let occ = l2.dgroup_occupancy();
    println!(
        "\nd-group occupancy: {}",
        occ.iter()
            .enumerate()
            .map(|(g, (used, cap))| format!("{}={}/{}", (b'a' + g as u8) as char, used, cap))
            .collect::<Vec<_>>()
            .join("  ")
    );
    println!(
        "\nReading the rows: each core fills its own d-group first; the\n\
         big-footprint cores (apsi, mcf) also own frames in the d-groups of\n\
         gzip and mesa - that is capacity stealing (Section 3.3)."
    );
}
